"""Tests of the ``repro lint`` rule framework (suppressions, reports, driver)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools import (
    Finding,
    Linter,
    PARSE_ERROR_RULE_ID,
    RULES,
    get_rules,
    parse_suppressions,
)
from repro.devtools.framework import path_matches
from repro.errors import ConfigurationError


def write_tree(root, files):
    """Materialise ``{relative path: source}`` under ``root``."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestSuppressions:
    def test_trailing_directive_is_line_level(self):
        suppressions = parse_suppressions(
            "import time\n"
            "x = time.time()  # repro-lint: disable=RL001\n"
            "y = time.time()\n"
        )
        assert suppressions.is_suppressed("RL001", 2)
        assert not suppressions.is_suppressed("RL001", 3)
        assert not suppressions.file_level

    def test_standalone_directive_is_file_wide(self):
        suppressions = parse_suppressions(
            "# repro-lint: disable=RL002\nimport sqlite3\n"
        )
        assert suppressions.is_suppressed("RL002", 1)
        assert suppressions.is_suppressed("RL002", 99)

    def test_directive_names_multiple_rules(self):
        suppressions = parse_suppressions("# repro-lint: disable=RL001,RL004\n")
        assert suppressions.is_suppressed("RL001", 5)
        assert suppressions.is_suppressed("RL004", 5)
        assert not suppressions.is_suppressed("RL002", 5)

    def test_directive_inside_string_literal_is_ignored(self):
        suppressions = parse_suppressions('x = "# repro-lint: disable=RL001"\n')
        assert not suppressions.is_suppressed("RL001", 1)

    def test_unrelated_comments_are_ignored(self):
        suppressions = parse_suppressions("# just a comment\nx = 1  # another\n")
        assert not suppressions.file_level
        assert not suppressions.by_line


class TestPathScoping:
    def test_fragment_matches_anywhere_on_the_posix_path(self):
        assert path_matches(Path("src/repro/schedule/greedy.py"), ("repro/schedule/",))
        assert path_matches(
            Path("/tmp/x/repro/schedule/mod.py"), ("repro/schedule/",)
        )
        assert not path_matches(Path("src/repro/analysis/report.py"), ("repro/schedule/",))


class TestLinter:
    def test_unparseable_file_becomes_a_parse_finding(self, tmp_path):
        write_tree(tmp_path, {"broken.py": "def broken(:\n"})
        report = Linter(RULES).lint_paths([tmp_path])
        assert [f.rule_id for f in report.findings] == [PARSE_ERROR_RULE_ID]
        assert not report.ok

    def test_findings_are_deterministically_ordered(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/schedule/b.py": "import time\nx = time.time()\n",
                "repro/schedule/a.py": "import time\nx = time.time()\n",
            },
        )
        report = Linter(RULES).lint_paths([tmp_path])
        paths = [finding.path.as_posix() for finding in report.findings]
        assert paths == sorted(paths)
        again = Linter(RULES).lint_paths([tmp_path])
        assert report.findings == again.findings

    def test_explicit_file_arguments_are_linted(self, tmp_path):
        target = write_tree(
            tmp_path, {"repro/schedule/mod.py": "import time\nx = time.time()\n"}
        ) / "repro/schedule/mod.py"
        report = Linter(RULES).lint_paths([target])
        assert [f.rule_id for f in report.findings] == ["RL001"]

    def test_clean_tree_reports_ok(self, tmp_path):
        write_tree(tmp_path, {"repro/schedule/mod.py": "x = sorted([3, 1, 2])\n"})
        report = Linter(RULES).lint_paths([tmp_path])
        assert report.ok
        assert "clean" in report.format_text()


class TestReportRendering:
    def finding(self):
        return Finding(
            rule_id="RL001",
            path=Path("src/mod.py"),
            line=3,
            column=7,
            severity="error",
            message="nondeterministic call",
            hint="seed it",
        )

    def test_text_line_carries_location_rule_and_hint(self):
        text = self.finding().format_text()
        assert text == "src/mod.py:3:7: [RL001] nondeterministic call"

    def test_json_payload_is_serialisable_and_complete(self, tmp_path):
        write_tree(tmp_path, {"repro/schedule/mod.py": "import time\nx = time.time()\n"})
        report = Linter(RULES).lint_paths([tmp_path])
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["tool"] == "repro-lint"
        assert payload["files_checked"] == 1
        assert payload["summary"]["findings"] == len(payload["findings"]) == 1
        assert [rule["id"] for rule in payload["rules"]] == [r.rule_id for r in RULES]
        assert payload["findings"][0]["rule"] == "RL001"
        assert payload["findings"][0]["hint"]


class TestRuleRegistry:
    def test_at_least_six_rules_with_unique_ordered_ids(self):
        ids = [rule.rule_id for rule in RULES]
        assert len(ids) >= 6
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_every_rule_documents_itself(self):
        for rule in RULES:
            assert rule.title
            assert rule.rationale
            assert rule.fix_hint
            assert rule.severity in {"error", "warning"}

    def test_get_rules_filters_and_rejects_unknown_ids(self):
        (only,) = get_rules(["RL003"])
        assert only.rule_id == "RL003"
        with pytest.raises(ConfigurationError, match="RL999"):
            get_rules(["RL999"])
