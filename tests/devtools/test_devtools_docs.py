"""Pins ``docs/devtools.md`` (and the README) to the lint-rule registry."""

import re
from pathlib import Path

import pytest

from repro.devtools import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A documented rule is a heading like ``### RL001 — <title>``.
RULE_HEADING = re.compile(r"^### (RL\d{3}) — (.+)$", re.MULTILINE)


@pytest.fixture(scope="module")
def devtools_doc():
    return (REPO_ROOT / "docs" / "devtools.md").read_text(encoding="utf-8")


class TestRuleCatalogue:
    def test_documented_rules_equal_the_registry_in_order(self, devtools_doc):
        documented = [match[0] for match in RULE_HEADING.findall(devtools_doc)]
        assert documented == [rule.rule_id for rule in RULES], (
            "docs/devtools.md rule headings and repro.devtools.rules.RULES "
            "diverge; document every rule as a '### RLnnn — title' heading, "
            "in registry order"
        )

    def test_headings_carry_the_rule_titles(self, devtools_doc):
        titles = {match[0]: match[1] for match in RULE_HEADING.findall(devtools_doc)}
        for rule in RULES:
            assert titles[rule.rule_id] == rule.title

    def test_each_rule_section_shows_a_violation_and_rationale(self, devtools_doc):
        sections = RULE_HEADING.split(devtools_doc)[1:]
        # split yields [id, title, body, id, title, body, ...]
        bodies = {sections[i]: sections[i + 2] for i in range(0, len(sections), 3)}
        for rule in RULES:
            body = bodies[rule.rule_id]
            assert "**Rationale.**" in body
            assert "Violation" in body

    def test_suppression_syntax_is_documented(self, devtools_doc):
        assert "repro-lint: disable=" in devtools_doc


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO_ROOT / "README.md").read_text(encoding="utf-8")

    def test_readme_has_a_static_analysis_section(self, readme):
        assert "## Static analysis" in readme
        assert "repro lint" in readme
        assert "docs/devtools.md" in readme

    def test_contributor_workflow_mentions_repro_lint(self, readme):
        development = readme.split("## Development", 1)[1]
        assert "lint src" in development
