"""Per-rule tests: a violating snippet, a clean snippet, and a honoured
suppression for each shipped ``repro lint`` rule."""

import textwrap

from repro.devtools import Linter, get_rules


def lint(tmp_path, files, rules=None):
    """Lint ``{relative path: source}`` under ``tmp_path``; returns findings."""
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Linter(get_rules(rules)).lint_paths([tmp_path]).findings


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestRL001Determinism:
    def test_flags_wall_clock_randomness_and_set_iteration(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/schedule/planner.py": """\
                import random
                import time

                def plan(cores):
                    t = time.time()
                    random.shuffle(cores)
                    rng = random.Random()
                    return [t for core in {1, 2}], rng
                """
            },
            rules=["RL001"],
        )
        messages = " ".join(f.message for f in findings)
        assert rule_ids(findings) == ["RL001"] * 4
        assert "time.time" in messages
        assert "unseeded" in messages
        assert "set" in messages

    def test_clean_outside_scope_and_with_seeded_rng(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                # Same calls outside the planner paths: not RL001's business.
                "repro/analysis/report.py": "import time\nx = time.time()\n",
                # In scope, but deterministic idioms only.
                "repro/schedule/clean.py": """\
                import random

                def plan(cores, seed):
                    rng = random.Random(seed)
                    return sorted(cores), rng.random()
                """,
            },
            rules=["RL001"],
        )
        assert findings == ()

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/schedule/mod.py": (
                    "import time\n"
                    "x = time.time()  # repro-lint: disable=RL001\n"
                )
            },
            rules=["RL001"],
        )
        assert findings == ()


class TestRL002WriterDiscipline:
    def test_flags_raw_connect_and_writable_store_construction(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/serve/service.py": """\
                import sqlite3
                from repro.runner.db import SweepDatabase

                def bad(path):
                    sqlite3.connect(path)
                    return SweepDatabase(path)
                """
            },
            rules=["RL002"],
        )
        assert rule_ids(findings) == ["RL002", "RL002"]

    def test_clean_in_blessed_modules_and_via_read_path(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/db.py": "import sqlite3\nc = sqlite3.connect(':memory:')\n",
                "repro/serve/jobs.py": (
                    "from repro.runner.db import SweepDatabase\n"
                    "def writer(path):\n"
                    "    return SweepDatabase(path)\n"
                ),
                "repro/serve/service.py": (
                    "from repro.runner.db import SweepDatabase\n"
                    "def reader(path):\n"
                    "    return SweepDatabase.open_reader(path)\n"
                ),
            },
            rules=["RL002"],
        )
        assert findings == ()

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/cli.py": (
                    "from repro.runner.db import SweepDatabase\n"
                    "db = SweepDatabase('x.db')  # repro-lint: disable=RL002\n"
                )
            },
            rules=["RL002"],
        )
        assert findings == ()


class TestRL003AtomicWrites:
    def test_flags_write_mode_open_and_write_text(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/store.py": """\
                from pathlib import Path

                def persist(path, text):
                    Path(path).write_text(text)
                    with open(path, mode="a") as handle:
                        handle.write(text)
                """
            },
            rules=["RL003"],
        )
        assert rule_ids(findings) == ["RL003", "RL003"]

    def test_clean_for_reads_and_inside_atomic_module(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/atomic.py": (
                    "def atomic_write_text(path, text):\n"
                    "    with open(path, 'w') as handle:\n"
                    "        handle.write(text)\n"
                ),
                "repro/runner/loader.py": (
                    "def load(path):\n"
                    "    with open(path) as handle:\n"
                    "        return handle.read()\n"
                ),
            },
            rules=["RL003"],
        )
        assert findings == ()

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/itc02/writer.py": (
                    "def dump(path, text):\n"
                    "    with open(path, 'w') as h:  # repro-lint: disable=RL003\n"
                    "        h.write(text)\n"
                )
            },
            rules=["RL003"],
        )
        assert findings == ()


class TestRL004ErrorModel:
    def test_flags_swallowed_exceptions_everywhere(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/analysis/report.py": """\
                import contextlib

                def swallow(job):
                    try:
                        job()
                    except Exception:
                        pass
                    with contextlib.suppress(Exception):
                        job()
                """
            },
            rules=["RL004"],
        )
        assert rule_ids(findings) == ["RL004", "RL004"]

    def test_flags_bad_handler_raises_and_unknown_status(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/serve/handlers.py": """\
                from repro.errors import ApiError

                def _handle_teapot(service, request):
                    raise ApiError("nope", status=418)

                def _handle_crash(service, request):
                    raise ValueError("boom")
                """
            },
            rules=["RL004"],
        )
        messages = " ".join(f.message for f in findings)
        assert rule_ids(findings) == ["RL004", "RL004"]
        assert "418" in messages
        assert "ValueError" in messages

    def test_clean_narrow_handlers_and_known_statuses(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/serve/handlers.py": """\
                import logging

                from repro.errors import ApiError

                logger = logging.getLogger(__name__)

                def _handle_thing(service, request):
                    raise ApiError("missing", status=404)

                def tolerate(job):
                    try:
                        job()
                    except ValueError:
                        pass
                    except Exception:
                        logger.exception("job failed")
                        raise
                """
            },
            rules=["RL004"],
        )
        assert findings == ()

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/util.py": (
                    "def swallow(job):\n"
                    "    try:\n"
                    "        job()\n"
                    "    except Exception:  # repro-lint: disable=RL004\n"
                    "        pass\n"
                )
            },
            rules=["RL004"],
        )
        assert findings == ()


class TestRL005RegistryCompleteness:
    BACKENDS_OK = """\
    class ExecutionBackend:
        name = "abstract"

    class SerialBackend(ExecutionBackend):
        name = "serial"

    BACKEND_FACTORIES = {SerialBackend.name: SerialBackend}
    """

    def test_flags_unregistered_concrete_backend(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/backends.py": """\
                class ExecutionBackend:
                    name = "abstract"

                class SerialBackend(ExecutionBackend):
                    name = "serial"

                class ForgottenBackend(SerialBackend):
                    name = "forgotten"

                BACKEND_FACTORIES = {SerialBackend.name: SerialBackend}
                """
            },
            rules=["RL005"],
        )
        assert rule_ids(findings) == ["RL005"]
        assert "ForgottenBackend" in findings[0].message

    def test_flags_missing_handler_and_missing_docs(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/serve/http.py": """\
                ROUTES = (
                    Route("GET", "/healthz", "_handle_missing"),
                )
                """
            },
            rules=["RL005"],
        )
        messages = " ".join(f.message for f in findings)
        assert rule_ids(findings) == ["RL005", "RL005"]
        assert "_handle_missing" in messages
        assert "docs/api.md" in messages

    def test_clean_when_registry_and_docs_agree(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "api.md").write_text(
            "### `GET /healthz`\n", encoding="utf-8"
        )
        findings = lint(
            tmp_path,
            {
                "repro/runner/backends.py": self.BACKENDS_OK,
                "repro/serve/http.py": """\
                ROUTES = (
                    Route("GET", "/healthz", "_handle_healthz"),
                )

                def _handle_healthz(service, request):
                    return 200, {}
                """,
            },
            rules=["RL005"],
        )
        assert findings == ()

    def test_flags_doc_heading_divergence(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "api.md").write_text(
            "### `GET /stale`\n", encoding="utf-8"
        )
        findings = lint(
            tmp_path,
            {
                "repro/serve/http.py": """\
                ROUTES = (
                    Route("GET", "/healthz", "_handle_healthz"),
                )

                def _handle_healthz(service, request):
                    return 200, {}
                """
            },
            rules=["RL005"],
        )
        assert rule_ids(findings) == ["RL005"]
        assert "diverge" in findings[0].message

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/backends.py": """\
                class ExecutionBackend:
                    name = "abstract"

                class ForgottenBackend(ExecutionBackend):  # repro-lint: disable=RL005
                    name = "forgotten"

                BACKEND_FACTORIES = {}
                """
            },
            rules=["RL005"],
        )
        assert findings == ()


class TestRL006CliHygiene:
    def test_flags_sys_exit_and_system_exit_in_library_code(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/cli.py": """\
                import sys

                def run():
                    sys.exit(2)

                def bail():
                    raise SystemExit(1)
                """
            },
            rules=["RL006"],
        )
        assert rule_ids(findings) == ["RL006", "RL006"]

    def test_clean_inside_the_main_guard(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/cli.py": """\
                import sys

                def main():
                    return 0

                if __name__ == "__main__":
                    sys.exit(main())
                """
            },
            rules=["RL006"],
        )
        assert findings == ()

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/tooling.py": (
                    "import sys\n"
                    "def bail():\n"
                    "    sys.exit(3)  # repro-lint: disable=RL006\n"
                )
            },
            rules=["RL006"],
        )
        assert findings == ()


class TestRL007WorkerLifecycle:
    def test_flags_state_assignment_outside_dispatch(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/backends.py": """\
                from repro.runner.dispatch import WorkerState

                def patch(outcome):
                    outcome.state = WorkerState.FINISHED
                """
            },
            rules=["RL007"],
        )
        assert rule_ids(findings) == ["RL007"]

    def test_flags_qualified_enum_reads(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/serve/jobs.py": """\
                from repro.runner import dispatch

                def patch(attempt):
                    attempt.state = dispatch.WorkerState.LOST
                """
            },
            rules=["RL007"],
        )
        assert rule_ids(findings) == ["RL007"]

    def test_clean_inside_dispatch_and_for_field_defaults(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/dispatch.py": """\
                class _Attempt:
                    def advance(self, target):
                        self.state = target
                """,
                "repro/runner/backends.py": """\
                from dataclasses import dataclass

                from repro.runner.dispatch import WorkerState

                @dataclass(frozen=True)
                class WorkerOutcome:
                    state: WorkerState = WorkerState.FINISHED

                def build():
                    return WorkerOutcome(state=WorkerState.FINISHED)
                """,
            },
            rules=["RL007"],
        )
        assert findings == ()

    def test_suppression_is_honoured(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "repro/runner/engine.py": (
                    "from repro.runner.dispatch import WorkerState\n"
                    "def patch(outcome):\n"
                    "    outcome.state = WorkerState.LOST"
                    "  # repro-lint: disable=RL007\n"
                )
            },
            rules=["RL007"],
        )
        assert findings == ()
