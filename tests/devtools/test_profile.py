"""Tests of the ``repro profile`` cProfile harness."""

import json

import pytest

from repro.cli import main
from repro.devtools import PROFILE_SORT_KEYS, profile_specs
from repro.errors import ConfigurationError
from repro.runner.spec import SweepSpec


@pytest.fixture(scope="module")
def small_spec():
    return SweepSpec(
        name="profile-test",
        systems=("d695_leon",),
        processor_counts=(0, 2),
        power_limits=(("no power limit", None),),
        schedulers=("greedy",),
    )


@pytest.fixture(scope="module")
def report(small_spec):
    return profile_specs(small_spec, limit=50)


class TestProfileSpecs:
    def test_report_shape(self, report):
        assert report.specs == ("profile-test",)
        assert report.point_count == 2
        assert report.sort == "cumulative"
        assert report.total_calls > 0
        assert report.total_time >= 0
        assert 0 < len(report.hotspots) <= 50

    def test_hotspots_ranked_by_sort_key(self, report):
        times = [spot.cumulative_time for spot in report.hotspots]
        assert times == sorted(times, reverse=True)

    def test_planning_functions_are_visible(self, report):
        functions = " ".join(spot.function for spot in report.hotspots)
        assert "greedy" in functions or "planner" in functions

    def test_tottime_sort(self, small_spec):
        ranked = profile_specs(small_spec, sort="tottime", limit=10)
        times = [spot.total_time for spot in ranked.hotspots]
        assert times == sorted(times, reverse=True)

    def test_to_dict_is_json_ready(self, report):
        document = json.loads(json.dumps(report.to_dict()))
        assert document["point_count"] == 2
        assert document["specs"] == ["profile-test"]
        expected_keys = {
            "function",
            "calls",
            "primitive_calls",
            "total_time",
            "cumulative_time",
        }
        assert expected_keys <= set(document["hotspots"][0])

    def test_format_text_lists_hotspots(self, report):
        text = report.format_text()
        assert "profiled 2 grid point(s) of profile-test" in text
        assert f"by {report.sort}:" in text
        assert len(text.splitlines()) == 3 + len(report.hotspots)

    def test_unknown_sort_rejected(self, small_spec):
        with pytest.raises(ConfigurationError):
            profile_specs(small_spec, sort="wallclock")

    def test_nonpositive_limit_rejected(self, small_spec):
        with pytest.raises(ConfigurationError):
            profile_specs(small_spec, limit=0)

    def test_empty_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_specs([])

    def test_sort_keys_cover_cli_choices(self):
        assert set(PROFILE_SORT_KEYS) == {"cumulative", "tottime", "calls"}


class TestProfileCli:
    def test_text_report_to_stdout(self, capsys):
        argv = [
            "profile",
            "d695_leon",
            "--no-characterize",
            "--counts",
            "0,2",
            "--limit",
            "5",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "top 5 functions by cumulative:" in out

    def test_json_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "profile.json"
        argv = [
            "profile",
            "d695_leon",
            "--no-characterize",
            "--counts",
            "0",
            "--power-limits",
            "none",
            "--sort",
            "tottime",
            "--format",
            "json",
            "--out",
            str(out_file),
        ]
        assert main(argv) == 0
        assert f"wrote {out_file}" in capsys.readouterr().out
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert document["sort"] == "tottime"
        assert document["point_count"] == 1
        assert document["hotspots"]

    def test_spec_json_conflicts_still_rejected(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text("{}", encoding="utf-8")
        assert main(["profile", "d695_leon", "--spec-json", str(spec_file)]) == 1
        assert "--spec-json" in capsys.readouterr().err
