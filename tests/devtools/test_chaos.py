"""Tests of the deterministic fault-injection harness (``repro.devtools.chaos``)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import chaos
from repro.errors import ConfigurationError
from repro.runner.dispatch import ATTEMPT_ENV, SHARD_ENV

SRC = str(Path(__file__).resolve().parents[2] / "src")


def set_chaos(monkeypatch, faults):
    monkeypatch.setenv(chaos.CHAOS_ENV, json.dumps(faults))


class TestParsing:
    def test_disabled_without_the_env(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        assert not chaos.chaos_enabled()
        assert chaos.active_faults() == ()

    def test_enabled_with_the_env(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "hang"}])
        assert chaos.chaos_enabled()

    def test_invalid_json_rejected(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            chaos.active_faults()

    def test_non_list_payload_rejected(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, '{"kind": "crash"}')
        with pytest.raises(ConfigurationError, match="JSON list"):
            chaos.active_faults()

    def test_non_object_entry_rejected(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, '["crash"]')
        with pytest.raises(ConfigurationError, match="must be objects"):
            chaos.active_faults()

    def test_unknown_key_rejected(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "crash", "sharrd": 1}])
        with pytest.raises(ConfigurationError, match="unknown chaos fault key"):
            chaos.active_faults()

    def test_unknown_kind_rejected(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "explode"}])
        with pytest.raises(ConfigurationError, match="unknown chaos fault kind"):
            chaos.active_faults()

    def test_defaults(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "crash"}])
        (fault,) = chaos.active_faults()
        assert fault == chaos.Fault(
            kind="crash", shard=None, attempt=None, after_points=0, exit_code=70
        )


class TestCoordinateMatching:
    def test_omitted_coordinates_match_any_worker(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "hang"}])
        monkeypatch.setenv(SHARD_ENV, "2")
        monkeypatch.setenv(ATTEMPT_ENV, "3")
        assert len(chaos.active_faults()) == 1

    def test_shard_and_attempt_filter(self, monkeypatch):
        set_chaos(
            monkeypatch,
            [
                {"kind": "crash", "shard": 0, "attempt": 1},
                {"kind": "hang", "shard": 1},
            ],
        )
        monkeypatch.setenv(SHARD_ENV, "0")
        monkeypatch.setenv(ATTEMPT_ENV, "1")
        (fault,) = chaos.active_faults()
        assert fault.kind == "crash"

        monkeypatch.setenv(ATTEMPT_ENV, "2")
        assert chaos.active_faults() == ()  # crash pinned to attempt 1

        monkeypatch.setenv(SHARD_ENV, "1")
        (fault,) = chaos.active_faults()
        assert fault.kind == "hang"  # any attempt on shard 1

    def test_bad_coordinate_rejected(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "hang"}])
        monkeypatch.setenv(SHARD_ENV, "zero")
        with pytest.raises(ConfigurationError, match="must be an integer"):
            chaos.active_faults()


class TestHooks:
    def test_exit_code_passthrough_without_faults(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        assert chaos.rewrite_exit_code(0) == 0
        assert chaos.rewrite_exit_code(5) == 5

    def test_corrupt_exit_rewrites_the_exit_code(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "corrupt-exit", "exit_code": 41}])
        assert chaos.rewrite_exit_code(0) == 41

    def test_other_faults_leave_the_exit_code_alone(self, monkeypatch):
        set_chaos(monkeypatch, [{"kind": "slow-start"}])
        assert chaos.rewrite_exit_code(0) == 0

    def test_slow_start_delays_worker_start(self, monkeypatch):
        import time

        set_chaos(monkeypatch, [{"kind": "slow-start", "delay": 0.05}])
        before = time.monotonic()
        chaos.on_worker_start()
        assert time.monotonic() - before >= 0.05

    def test_crash_waits_for_after_points(self, monkeypatch):
        """A crash with a point budget must not fire before the budget is
        spent (checked in-process only below the threshold — at the
        threshold it would kill the interpreter)."""
        set_chaos(monkeypatch, [{"kind": "crash", "after_points": 100}])
        monkeypatch.setattr(chaos, "_points_planned", 0)
        for _ in range(5):
            chaos.on_point_planned()
        assert chaos._points_planned == 5

    def test_crash_hard_kills_the_process(self, monkeypatch):
        """The crash fault uses os._exit: no cleanup, the configured code."""
        script = (
            "from repro.devtools import chaos\n"
            "chaos.on_point_planned()\n"
            "print('unreachable')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env={
                "PYTHONPATH": SRC,
                chaos.CHAOS_ENV: json.dumps(
                    [{"kind": "crash", "after_points": 1, "exit_code": 70}]
                ),
            },
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert result.returncode == 70
        assert "unreachable" not in result.stdout
