"""Tests of the pluggable execution backends and the shard-worker orchestrator."""

import sys

import pytest

from repro.errors import ConfigurationError, OrchestrationError
from repro.runner.backends import (
    BACKEND_FACTORIES,
    ProcessPoolBackend,
    RemoteDispatchBackend,
    SerialBackend,
    ShardWorkerBackend,
    make_backend,
)
from repro.runner.db import SweepDatabase
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec
from repro.runner.store import dump_sweep, save_sweeps


@pytest.fixture(scope="module")
def small_spec():
    return SweepSpec(
        name="backend-grid",
        systems=("d695_leon",),
        processor_counts=(0, 2),
        power_limits=(("no power limit", None),),
    )


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(BACKEND_FACTORIES) == {"serial", "pool", "shard-workers", "remote"}

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("pool", jobs=3), ProcessPoolBackend)
        assert isinstance(make_backend("shard-workers", workers=4), ShardWorkerBackend)
        remote = make_backend("remote", hosts=["h1", "h2"], launcher="local")
        assert isinstance(remote, RemoteDispatchBackend)
        assert remote.worker_count == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("quantum")

    def test_remote_needs_hosts_and_hosts_need_remote(self):
        with pytest.raises(ConfigurationError, match="at least one host"):
            make_backend("remote")
        with pytest.raises(ConfigurationError, match="at least one host"):
            RemoteDispatchBackend(["  ", ""])
        with pytest.raises(ConfigurationError, match="remote backend"):
            make_backend("serial", hosts=["h1"])

    def test_serial_with_multiple_jobs_rejected(self):
        """jobs > 1 next to the serial backend is a contradiction, not a
        silently ignored flag."""
        with pytest.raises(ConfigurationError, match="pool"):
            make_backend("serial", jobs=4)

    def test_pool_jobs_resolution(self):
        assert make_backend("pool", jobs=None).worker_count >= 1
        assert make_backend("pool", jobs=5).worker_count == 5
        with pytest.raises(ConfigurationError, match="positive"):
            make_backend("pool", jobs=-1)

    def test_shard_worker_validation(self):
        with pytest.raises(ConfigurationError, match="positive"):
            ShardWorkerBackend(workers=0)
        with pytest.raises(ConfigurationError, match="strategy"):
            ShardWorkerBackend(workers=2, strategy="random")


class TestRunnerBackendSelection:
    def test_jobs_shorthand_selects_backend(self):
        assert SweepRunner(jobs=1).backend.name == "serial"
        assert SweepRunner(jobs=3).backend.name == "pool"
        assert SweepRunner(jobs=3).jobs == 3

    def test_backend_name_accepted(self):
        assert SweepRunner(backend="serial").backend.name == "serial"
        assert SweepRunner(jobs=2, backend="pool").jobs == 2

    def test_backend_instance_accepted(self):
        backend = ShardWorkerBackend(workers=3)
        runner = SweepRunner(backend=backend)
        assert runner.backend is backend
        assert runner.jobs == 3


class TestBackendEquivalence:
    def test_pool_backend_byte_identical_to_serial(self, small_spec):
        serial = SweepRunner(backend=SerialBackend()).run(small_spec)
        pooled = SweepRunner(backend=ProcessPoolBackend(jobs=2)).run(small_spec)
        assert dump_sweep(small_spec, pooled) == dump_sweep(small_spec, serial)

    def test_pool_backend_with_one_job_runs_inline(self, small_spec):
        """jobs=1 on the pool backend must not spawn a pool (the serial
        shortcut the engine used to apply lives in the backend now)."""
        runner = SweepRunner(backend=ProcessPoolBackend(jobs=1))
        outcomes = runner.run(small_spec)
        assert len(outcomes) == small_spec.point_count


class TestCapabilityChecks:
    def test_shard_workers_cannot_run_inline(self, small_spec, tmp_path):
        runner = SweepRunner(backend=ShardWorkerBackend(workers=2))
        with pytest.raises(ConfigurationError, match="in-process"):
            runner.run(small_spec)
        with SweepDatabase(tmp_path / "s.db") as db:
            with pytest.raises(ConfigurationError, match="in-process"):
                runner.run_stored(small_spec, db)
            with pytest.raises(ConfigurationError, match="in-process"):
                runner.run_shard(small_spec, db, shard_index=0, shard_count=2)

    def test_inline_backends_cannot_orchestrate(self, small_spec, tmp_path):
        with SweepDatabase(tmp_path / "s.db") as db:
            for backend in (SerialBackend(), ProcessPoolBackend(jobs=2)):
                with pytest.raises(ConfigurationError, match="orchestrate"):
                    SweepRunner(backend=backend).orchestrate(small_spec, db)


class TestWorkerPlanning:
    def test_plans_one_worker_per_shard(self, small_spec, tmp_path):
        backend = ShardWorkerBackend(workers=3, strategy="strided")
        plans = backend.plan_workers(small_spec, tmp_path)
        assert [plan.shard_index for plan in plans] == [0, 1, 2]
        assert len({plan.store_path for plan in plans}) == 3
        for plan in plans:
            assert plan.spec_path.exists()
            assert "--spec-json" in plan.argv
            position = plan.argv.index("--shard-index")
            assert plan.argv[position + 1] == str(plan.shard_index)
            assert "--shard-strategy" in plan.argv
            assert "strided" in plan.argv
            assert "--no-characterize" in plan.argv

    def test_characterisation_settings_forwarded(self, small_spec, tmp_path):
        backend = ShardWorkerBackend(workers=2)
        plans = backend.plan_workers(
            small_spec,
            tmp_path,
            characterize=True,
            packet_count=40,
            cache_dir=tmp_path / "cache",
            resume=True,
        )
        for plan in plans:
            assert "--no-characterize" not in plan.argv
            position = plan.argv.index("--packets")
            assert plan.argv[position + 1] == "40"
            assert "--cache-dir" in plan.argv
            assert "--resume" in plan.argv


class TestShardWorkerOrchestration:
    def test_orchestrated_d695_grid_byte_identical_to_serial(self, tmp_path):
        """The PR's acceptance criterion: the d695 grid orchestrated over 3
        local shard workers merges into a store whose exported document is
        byte-identical to a serial full run's, and (history carried) the
        merged store's run count equals the sum of the shard run counts."""
        from repro.experiments.figure1 import figure1_spec

        spec = figure1_spec("d695_leon")
        serial = save_sweeps(
            tmp_path / "serial.json", [(spec, SweepRunner(jobs=1).run(spec))]
        )
        backend = ShardWorkerBackend(workers=3)
        runner = SweepRunner(backend=backend)
        with SweepDatabase(tmp_path / "merged.db") as db:
            report = runner.orchestrate(spec, db, workdir=tmp_path / "work")
            exported = db.export_document(tmp_path / "merged.json")
            assert db.run_count(report.spec_key) == report.run_count
        assert exported.read_bytes() == serial.read_bytes()

        assert [w.returncode for w in report.workers] == [0, 0, 0]
        assert report.record_count == spec.point_count
        shard_run_counts = []
        for worker in report.workers:
            with SweepDatabase(worker.store_path) as shard:
                shard_run_counts.append(shard.run_count())
        assert report.run_count == sum(shard_run_counts) == 3

    def test_orchestration_with_more_workers_than_points(self, small_spec, tmp_path):
        """An over-provisioned fleet produces empty shards, which must run,
        store and merge like any other shard."""
        backend = ShardWorkerBackend(workers=4)
        with SweepDatabase(tmp_path / "merged.db") as db:
            report = SweepRunner(backend=backend).orchestrate(
                small_spec, db, workdir=tmp_path / "work"
            )
            assert report.record_count == small_spec.point_count == 2
            assert report.run_count == 4  # empty shards still record their run
            records = db.records(small_spec.content_key())
        serial = [o.record() for o in SweepRunner(jobs=1).run(small_spec)]
        assert records == serial

    def test_worker_command_hook_sees_every_plan(self, small_spec, tmp_path):
        """The dispatch seam: the hook receives each plan (with the default
        argv) and decides the spawned command — here a pass-through, in real
        deployments an ssh/CI wrapper."""
        seen = []

        def passthrough(plan):
            seen.append(plan)
            return plan.argv

        backend = ShardWorkerBackend(workers=2, worker_command=passthrough)
        with SweepDatabase(tmp_path / "merged.db") as db:
            SweepRunner(backend=backend).orchestrate(
                small_spec, db, workdir=tmp_path / "work"
            )
        assert [plan.shard_index for plan in seen] == [0, 1]
        assert all(plan.argv[0] == sys.executable for plan in seen)

    def test_failing_worker_raises_with_log_tail(self, small_spec, tmp_path):
        def broken(plan):
            return [
                sys.executable,
                "-c",
                "import sys; print('shard exploded'); sys.exit(3)",
            ]

        backend = ShardWorkerBackend(workers=2, worker_command=broken)
        with SweepDatabase(tmp_path / "merged.db") as db:
            with pytest.raises(OrchestrationError, match="exited 3"):
                SweepRunner(backend=backend).orchestrate(
                    small_spec, db, workdir=tmp_path / "work"
                )
            # The failed orchestration must not have merged anything.
            assert db.record_count() == 0
        (log_path,) = (tmp_path / "work").rglob("shard-0.log")
        assert "shard exploded" in log_path.read_text()

    def test_hung_worker_killed_after_timeout(self, small_spec, tmp_path):
        def hang(plan):
            return [sys.executable, "-c", "import time; time.sleep(60)"]

        backend = ShardWorkerBackend(workers=2, worker_command=hang, timeout=0.3)
        with SweepDatabase(tmp_path / "merged.db") as db:
            with pytest.raises(OrchestrationError, match="still running"):
                SweepRunner(backend=backend).orchestrate(
                    small_spec, db, workdir=tmp_path / "work"
                )
            assert db.record_count() == 0

    def test_remerging_unchanged_shard_stores_is_a_noop(self, small_spec, tmp_path):
        """Folding the shard stores of a finished orchestration in again must
        carry no runs and add no records (retry safety)."""
        backend = ShardWorkerBackend(workers=2)
        with SweepDatabase(tmp_path / "merged.db") as db:
            report = SweepRunner(backend=backend).orchestrate(
                small_spec, db, workdir=tmp_path / "work"
            )
            run_count = db.run_count()
            for worker in report.workers:
                with SweepDatabase(worker.store_path) as shard:
                    again = db.merge(shard, carry_history=True)
                assert again.runs_carried == 0
                assert again.inserted == 0
            assert db.run_count() == run_count
            assert db.records(report.spec_key) == [
                o.record() for o in SweepRunner(jobs=1).run(small_spec)
            ]


class TestCostBasedSharding:
    def seeded_store(self, spec, path, costs):
        db = SweepDatabase(path)
        spec_key = db.ensure_sweep(spec)
        db.record_run(spec_key, [], executed=0, skipped=0, point_costs=costs)
        return db

    def test_no_measurements_falls_back_to_equal_sharding(self, small_spec, tmp_path):
        backend = ShardWorkerBackend(workers=2, cost_sizing=True)
        with SweepDatabase(tmp_path / "empty.db") as db:
            db.ensure_sweep(small_spec)
            assert backend.plan_point_groups(small_spec, db) is None

    def test_fewer_points_than_workers_falls_back(self, small_spec, tmp_path):
        backend = ShardWorkerBackend(workers=4, cost_sizing=True)
        with self.seeded_store(small_spec, tmp_path / "s.db", {0: 1.0}) as db:
            assert backend.plan_point_groups(small_spec, db) is None

    def test_lpt_balances_measured_costs(self, tmp_path):
        """One dominant point gets a worker to itself; the cheap points pack
        onto the other — and unmeasured points cost the measured mean."""
        spec = SweepSpec(
            name="lpt-grid",
            systems=("d695_leon",),
            processor_counts=(0, 2, 4, 6),
            power_limits=(("no power limit", None),),
        )
        costs = {0: 10.0, 1: 1.0, 2: 1.0}  # point 3 unmeasured -> mean 4.0
        backend = ShardWorkerBackend(workers=2, cost_sizing=True)
        with self.seeded_store(spec, tmp_path / "s.db", costs) as db:
            groups = backend.plan_point_groups(spec, db)
            again = backend.plan_point_groups(spec, db)
        assert groups == again  # deterministic
        assert groups == [(0,), (1, 2, 3)]
        assert sorted(i for group in groups for i in group) == [0, 1, 2, 3]

    def test_point_groups_flow_into_worker_argv(self, small_spec, tmp_path):
        backend = ShardWorkerBackend(workers=2)
        plans = backend.plan_workers(
            small_spec, tmp_path, point_groups=[(1,), (0,)]
        )
        for plan, expected in zip(plans, ("1", "0")):
            position = plan.argv.index("--points")
            assert plan.argv[position + 1] == expected
            assert "--shard-index" not in plan.argv
        assert [plan.point_indices for plan in plans] == [(1,), (0,)]

    def test_cost_sized_orchestration_matches_serial(self, small_spec, tmp_path):
        """End to end: measure costs with a serial store-backed run, then
        orchestrate the same grid cost-sized — records identical to serial."""
        with SweepDatabase(tmp_path / "merged.db") as db:
            SweepRunner(jobs=1).run_stored(small_spec, db)
            assert db.point_cost_rows(small_spec.content_key())
            backend = ShardWorkerBackend(workers=2, cost_sizing=True)
            report = SweepRunner(backend=backend).orchestrate(
                small_spec, db, workdir=tmp_path / "work", resume=False
            )
            records = db.records(small_spec.content_key())
        assert report.record_count == small_spec.point_count
        assert records == [o.record() for o in SweepRunner(jobs=1).run(small_spec)]
