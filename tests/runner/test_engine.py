"""Tests of the sweep engine: determinism, caching, parallel equivalence."""

import pytest

from repro.errors import ConfigurationError
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec
from repro.runner.store import dump_sweep
from repro.schedule.planner import TestPlanner
from repro.schedule.result import validate_schedule
from repro.system.presets import build_paper_system


@pytest.fixture(scope="module")
def d695_spec():
    return SweepSpec(
        name="d695-grid",
        systems=("d695_leon",),
        processor_counts=(0, 2, 4),
        power_limits={"no power limit": None, "50% power limit": 0.5},
    )


@pytest.fixture(scope="module")
def serial_outcomes(d695_spec):
    return SweepRunner(jobs=1).run(d695_spec)


class TestSerialExecution:
    def test_outcomes_in_point_order(self, d695_spec, serial_outcomes):
        assert [o.point for o in serial_outcomes] == list(d695_spec.points())

    def test_schedules_valid(self, serial_outcomes):
        for outcome in serial_outcomes:
            validate_schedule(outcome.result)

    def test_matches_direct_planner_path(self, serial_outcomes):
        """The engine must reproduce the legacy serial loop exactly."""
        planner = TestPlanner(build_paper_system("d695_leon"))
        for outcome in serial_outcomes:
            direct = planner.plan(
                reused_processors=outcome.point.reused_processors,
                power_limit_fraction=outcome.point.power_limit_fraction,
            )
            assert outcome.makespan == direct.makespan
            assert [
                (a.core_id, a.start, a.interface_id)
                for a in outcome.result.assignments
            ] == [(a.core_id, a.start, a.interface_id) for a in direct.assignments]

    def test_system_built_once_per_soc(self, d695_spec):
        runner = SweepRunner(jobs=1)
        runner.run(d695_spec)
        assert runner.system_cache.stats.misses == 1
        assert runner.system_cache.stats.hits == d695_spec.point_count - 1


class TestDeterminism:
    def test_same_spec_gives_byte_identical_store_json(self, d695_spec):
        first = dump_sweep(d695_spec, SweepRunner(jobs=1).run(d695_spec))
        second = dump_sweep(d695_spec, SweepRunner(jobs=1).run(d695_spec))
        assert first == second

    def test_characterized_run_is_deterministic(self, d695_spec, tmp_path):
        first = dump_sweep(
            d695_spec,
            SweepRunner(jobs=1, characterize=True, packet_count=40).run(d695_spec),
        )
        second = dump_sweep(
            d695_spec,
            SweepRunner(
                jobs=1, characterize=True, packet_count=40, cache_dir=tmp_path
            ).run(d695_spec),
        )
        assert first == second


class TestParallelExecution:
    def test_parallel_equals_serial(self, d695_spec, serial_outcomes):
        parallel = SweepRunner(jobs=2).run(d695_spec)
        assert [o.point for o in parallel] == [o.point for o in serial_outcomes]
        for par, ser in zip(parallel, serial_outcomes):
            assert par.makespan == ser.makespan
            assert [
                (a.core_id, a.start, a.interface_id) for a in par.result.assignments
            ] == [(a.core_id, a.start, a.interface_id) for a in ser.result.assignments]

    def test_parallel_store_json_identical(self, d695_spec, serial_outcomes):
        parallel = SweepRunner(jobs=2).run(d695_spec)
        assert dump_sweep(d695_spec, parallel) == dump_sweep(
            d695_spec, serial_outcomes
        )

    def test_parallel_builds_once_per_soc_in_parent(self, d695_spec):
        """The parent pre-builds and seeds the workers, so the cache stats
        reflect one build per SoC even on the pool path."""
        runner = SweepRunner(jobs=2)
        runner.run(d695_spec)
        assert runner.system_cache.stats.misses == 1


class TestCharacterization:
    def test_disabled_by_default(self, serial_outcomes):
        assert all(o.characterization is None for o in serial_outcomes)

    def test_one_characterization_per_soc(self, d695_spec):
        runner = SweepRunner(jobs=1, characterize=True, packet_count=40)
        outcomes = runner.run(d695_spec)
        assert runner.characterization_cache.stats.misses == 1
        characterizations = {id(o.characterization) for o in outcomes}
        assert len(characterizations) == 1
        assert outcomes[0].characterization.packet_count == 40

    def test_record_shape(self, d695_spec):
        runner = SweepRunner(jobs=1, characterize=True, packet_count=40)
        record = runner.run(d695_spec)[0].record()
        assert record["system"] == "d695_leon"
        assert record["makespan"] > 0
        assert record["scheduler_policy"] == "greedy-first-available"
        assert record["characterization"]["packet_count"] == 40


class TestRunnerConfiguration:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            SweepRunner(jobs=-2)

    def test_jobs_zero_means_cpu_count(self):
        assert SweepRunner(jobs=0).jobs >= 1

    def test_shared_system_cache(self, d695_spec):
        from repro.runner.cache import SystemCache

        shared = SystemCache()
        SweepRunner(jobs=1, system_cache=shared).run(d695_spec)
        SweepRunner(jobs=1, system_cache=shared).run(d695_spec)
        assert shared.stats.misses == 1


class TestShardExecution:
    def test_shard_executes_only_its_points(self, d695_spec, tmp_path):
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "shard.db") as db:
            report = SweepRunner(jobs=1).run_shard(
                d695_spec, db, shard_index=0, shard_count=3
            )
            expected = tuple(p.index for p in d695_spec.shard(0, 3))
            assert report.executed_indices == expected
            assert report.skipped_indices == ()
            assert report.shard == (0, 3)
            assert tuple(r["index"] for r in report.records) == expected
            (run,) = db.runs()
            assert run.source == "shard:0/3"

    def test_sharded_stores_merge_to_serial_records(
        self, d695_spec, serial_outcomes, tmp_path
    ):
        """Running every shard into its own store and merging must be
        record-identical to a serial full run of the grid."""
        from repro.runner.db import SweepDatabase

        shard_paths = []
        for index in range(3):
            path = tmp_path / f"shard-{index}.db"
            with SweepDatabase(path) as db:
                SweepRunner(jobs=1).run_shard(
                    d695_spec, db, shard_index=index, shard_count=3
                )
            shard_paths.append(path)
        with SweepDatabase(tmp_path / "merged.db") as merged:
            for path in shard_paths:
                with SweepDatabase(path) as shard:
                    merged.merge(shard)
            records = merged.records(d695_spec.content_key())
        assert records == [outcome.record() for outcome in serial_outcomes]

    def test_strided_shards_merge_to_serial_records(
        self, d695_spec, serial_outcomes, tmp_path
    ):
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "merged.db") as merged:
            for index in range(2):
                path = tmp_path / f"shard-{index}.db"
                with SweepDatabase(path) as db:
                    SweepRunner(jobs=1).run_shard(
                        d695_spec, db, shard_index=index, shard_count=2, strategy="strided"
                    )
                with SweepDatabase(path) as shard:
                    merged.merge(shard)
            records = merged.records(d695_spec.content_key())
        assert records == [outcome.record() for outcome in serial_outcomes]

    def test_shard_resume_skips_stored_points(self, d695_spec, tmp_path):
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "shard.db") as db:
            first = SweepRunner(jobs=1).run_shard(
                d695_spec, db, shard_index=1, shard_count=3, resume=True
            )
            again = SweepRunner(jobs=1).run_shard(
                d695_spec, db, shard_index=1, shard_count=3, resume=True
            )
            assert first.executed_count == len(d695_spec.shard(1, 3))
            assert again.executed_count == 0
            assert again.skipped_indices == first.executed_indices
            assert again.records == first.records

    def test_invalid_shard_rejected(self, d695_spec, tmp_path):
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "shard.db") as db:
            with pytest.raises(ConfigurationError, match="out of range"):
                SweepRunner(jobs=1).run_shard(
                    d695_spec, db, shard_index=3, shard_count=3
                )

    def test_empty_shards_run_merge_and_export_end_to_end(
        self, d695_spec, serial_outcomes, tmp_path
    ):
        """More shards than points (6 points, 10 shards): the empty shards
        must run (recording an empty run), merge, and the merged store must
        still export byte-identical to a serial full run's document."""
        from repro.runner.db import SweepDatabase
        from repro.runner.store import save_sweeps

        serial = save_sweeps(tmp_path / "serial.json", [(d695_spec, serial_outcomes)])
        shard_paths = []
        for index in range(10):
            path = tmp_path / f"shard-{index}.db"
            with SweepDatabase(path) as db:
                report = SweepRunner(jobs=1).run_shard(
                    d695_spec, db, shard_index=index, shard_count=10
                )
                if index >= d695_spec.point_count:
                    assert report.executed_count == 0
                    assert report.records == ()
                    (run,) = db.runs()
                    assert run.source == f"shard:{index}/10"
            shard_paths.append(path)
        with SweepDatabase(tmp_path / "merged.db") as merged:
            for path in shard_paths:
                with SweepDatabase(path) as shard:
                    merged.merge(shard)
            assert merged.record_count() == d695_spec.point_count
            exported = merged.export_document(tmp_path / "merged.json")
        assert exported.read_bytes() == serial.read_bytes()


class TestShardReportsOnSharedStore:
    def test_shard_report_holds_only_its_own_points(self, d695_spec, tmp_path):
        """Shards landing in the SAME store must not leak each other's
        records through their reports."""
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "shared.db") as db:
            SweepRunner(jobs=1).run_shard(d695_spec, db, shard_index=0, shard_count=3)
            second = SweepRunner(jobs=1).run_shard(
                d695_spec, db, shard_index=1, shard_count=3
            )
            expected = tuple(p.index for p in d695_spec.shard(1, 3))
            assert tuple(r["index"] for r in second.records) == expected
            # ...while the store itself accumulates both shards.
            assert db.record_count(d695_spec.content_key()) == len(expected) * 2


class TestCheckpointedRuns:
    """checkpoint_every: chunked commits that make killed runs resumable."""

    def test_non_positive_checkpoint_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            SweepRunner(checkpoint_every=0)

    def test_chunked_run_rows_and_identical_records(self, d695_spec, tmp_path):
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "chunked.db") as db:
            SweepRunner(checkpoint_every=2).run_stored(d695_spec, db)
            runs = db.runs()
            records = db.records(d695_spec.content_key())
        # 6 points in chunks of 2 -> 3 run rows, executed counters intact.
        assert [run.executed_points for run in runs] == [2, 2, 2]
        assert sum(run.skipped_points for run in runs) == 0
        serial = [o.record() for o in SweepRunner(jobs=1).run(d695_spec)]
        assert records == serial

    def test_partial_checkpointed_run_resumes_to_the_serial_records(
        self, d695_spec, tmp_path
    ):
        """The requeue foundation: execute only part of the grid (as a
        killed checkpointing worker would leave it), then resume — the
        store must converge to the serial records."""
        from repro.runner.db import SweepDatabase

        runner = SweepRunner(checkpoint_every=1)
        with SweepDatabase(tmp_path / "partial.db") as db:
            runner.run_points(d695_spec, db, [0, 1], resume=False)
            report = runner.run_stored(d695_spec, db, resume=True)
            assert len(report.executed_indices) == d695_spec.point_count - 2
            assert report.skipped_indices == (0, 1)
            records = db.records(d695_spec.content_key())
        serial = [o.record() for o in SweepRunner(jobs=1).run(d695_spec)]
        assert records == serial


class TestPointSubsetRuns:
    def test_run_points_labels_its_source(self, d695_spec, tmp_path):
        from repro.runner.db import SweepDatabase

        with SweepDatabase(tmp_path / "points.db") as db:
            report = SweepRunner().run_points(d695_spec, db, [4, 2])
            (run,) = db.runs()
            assert run.source == "points:2"
            assert [r["reused_processors"] for r in db.records(report.spec_key)] == [
                d695_spec.points()[2].reused_processors,
                d695_spec.points()[4].reused_processors,
            ]

    def test_resumed_subset_skips_executed_points(self, d695_spec, tmp_path):
        from repro.runner.db import SweepDatabase

        runner = SweepRunner()
        with SweepDatabase(tmp_path / "points.db") as db:
            runner.run_points(d695_spec, db, [0, 1])
            report = runner.run_points(d695_spec, db, [0, 1, 2], resume=True)
            assert report.executed_indices == (2,)
            assert report.skipped_indices == (0, 1)

    def test_shard_worker_backend_cannot_run_points_inline(self, d695_spec, tmp_path):
        from repro.runner.backends import ShardWorkerBackend
        from repro.runner.db import SweepDatabase

        runner = SweepRunner(backend=ShardWorkerBackend(workers=2))
        with SweepDatabase(tmp_path / "s.db") as db:
            with pytest.raises(ConfigurationError, match="in-process"):
                runner.run_points(d695_spec, db, [0])
