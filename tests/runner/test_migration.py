"""Tests of the in-place store migrations: v2 (pre-``jobs``) and v3
(pre-``point_costs``) stores upgrade to the current schema on first
writer open.

Old-version stores are manufactured by downgrading a current one —
dropping the newer tables and rewinding the version marker — which is
exactly the shape earlier PRs' daemons left on disk.
"""

import sqlite3

import pytest

from repro.errors import ResultStoreError
from repro.runner.db import DB_SCHEMA_VERSION, SweepDatabase
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec


def seeded_store(path):
    """A current-schema store holding one small completed run."""
    spec = SweepSpec(
        name="migration-grid",
        systems=("d695_plasma",),
        processor_counts=(0, 2),
    )
    records = [outcome.record() for outcome in SweepRunner(jobs=1).run(spec)]
    with SweepDatabase(path) as db:
        spec_key = db.ensure_sweep(spec)
        db.record_run(spec_key, records, executed=len(records), skipped=0)
    return spec_key, records


def downgrade_to_v2(path):
    """Rewind a store to the pre-jobs schema (what PR 5/6 wrote)."""
    connection = sqlite3.connect(path)
    try:
        with connection:
            connection.execute("DROP TABLE jobs")
            connection.execute("DELETE FROM meta WHERE key = 'migrated_from'")
            connection.execute(
                "UPDATE meta SET value = '2' WHERE key = 'schema_version'"
            )
    finally:
        connection.close()


def downgrade_to_v3(path):
    """Rewind a store to the pre-point_costs schema (what PRs 6-9 wrote)."""
    connection = sqlite3.connect(path)
    try:
        with connection:
            connection.execute("DROP TABLE point_costs")
            connection.execute("DELETE FROM meta WHERE key = 'migrated_from'")
            connection.execute(
                "UPDATE meta SET value = '3' WHERE key = 'schema_version'"
            )
    finally:
        connection.close()


def meta_value(path, key):
    connection = sqlite3.connect(path)
    try:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]
    finally:
        connection.close()


class TestMigration:
    def test_writer_migrates_v2_in_place(self, tmp_path):
        path = tmp_path / "v2.db"
        spec_key, records = seeded_store(path)
        downgrade_to_v2(path)
        with SweepDatabase(path) as db:
            # The upgrade happened on open: jobs table present and empty,
            # and the store's data came through untouched.
            assert db.job_rows() == []
            assert db.records(spec_key) == records
            assert db.data_version() == (len(records), 1)
        assert meta_value(path, "schema_version") == str(DB_SCHEMA_VERSION)
        assert meta_value(path, "migrated_from") == "2"

    def test_migrated_store_reopens_cleanly(self, tmp_path):
        path = tmp_path / "v2.db"
        seeded_store(path)
        downgrade_to_v2(path)
        with SweepDatabase(path):
            pass
        # Second open of the now-v3 store must not re-migrate or complain.
        with SweepDatabase(path) as db:
            assert db.job_rows() == []
        with SweepDatabase.open_reader(path) as reader:
            assert reader.read_only

    def test_reader_refuses_v2_with_migrate_hint(self, tmp_path):
        path = tmp_path / "v2.db"
        seeded_store(path)
        downgrade_to_v2(path)
        with pytest.raises(ResultStoreError, match="migrate it in place"):
            SweepDatabase.open_reader(path)

    def test_unknown_future_version_is_refused(self, tmp_path):
        path = tmp_path / "future.db"
        seeded_store(path)
        connection = sqlite3.connect(path)
        with connection:
            connection.execute(
                "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
            )
        connection.close()
        with pytest.raises(ResultStoreError, match="99"):
            SweepDatabase(path)
        with pytest.raises(ResultStoreError, match="99"):
            SweepDatabase.open_reader(path)


class TestV3Migration:
    def test_writer_migrates_v3_in_place(self, tmp_path):
        path = tmp_path / "v3.db"
        spec_key, records = seeded_store(path)
        downgrade_to_v3(path)
        with SweepDatabase(path) as db:
            # The upgrade happened on open: point_costs table present and
            # empty, the store's data untouched.
            assert db.point_cost_rows(spec_key) == {}
            assert db.records(spec_key) == records
            assert db.data_version() == (len(records), 1)
            # The migrated store accepts cost writes immediately.
            db.record_run(
                spec_key, [], executed=0, skipped=0, point_costs={0: 0.25}
            )
            assert db.point_cost_rows(spec_key) == {0: 0.25}
        assert meta_value(path, "schema_version") == str(DB_SCHEMA_VERSION)
        assert meta_value(path, "migrated_from") == "3"

    def test_reader_refuses_v3_with_migrate_hint(self, tmp_path):
        path = tmp_path / "v3.db"
        seeded_store(path)
        downgrade_to_v3(path)
        with pytest.raises(ResultStoreError, match="migrate it in place"):
            SweepDatabase.open_reader(path)
