"""Tests of ``SweepDatabase.data_version()`` invalidation edges and of the
``open_reader`` read path — the serve TTL cache keys on the former and every
non-writer module opens stores through the latter."""

import pytest

from repro.errors import ResultStoreError
from repro.runner.db import SweepDatabase
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec


@pytest.fixture(scope="module")
def spec():
    return SweepSpec(
        name="version-grid",
        systems=("d695_plasma",),
        processor_counts=(0, 2, 6),
        power_limits={"no power limit": None, "50% power limit": 0.5},
    )


@pytest.fixture(scope="module")
def serial_records(spec):
    return [outcome.record() for outcome in SweepRunner(jobs=1).run(spec)]


class TestDataVersionEdges:
    def test_fresh_store_baseline_is_zero_zero(self, tmp_path):
        with SweepDatabase(tmp_path / "fresh.db") as db:
            assert db.data_version() == (0, 0)

    def test_registering_a_sweep_alone_does_not_bump(self, spec, tmp_path):
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            db.ensure_sweep(spec)
            assert db.data_version() == (0, 0)

    def test_one_run_bumps_records_by_n_and_runs_by_one(
        self, spec, serial_records, tmp_path
    ):
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
            assert db.data_version() == (len(serial_records), 1)

    def test_multi_write_in_one_run_transaction_is_a_single_version_step(
        self, spec, serial_records, tmp_path
    ):
        """All of a run's records land in one transaction: the version moves
        from the pre-run value straight to (records + N, runs + 1), never
        through intermediate states another connection could observe."""
        path = tmp_path / "sweeps.db"
        with SweepDatabase(path) as db, SweepDatabase.open_reader(path) as reader:
            spec_key = db.ensure_sweep(spec)
            before = reader.data_version()
            db.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
            after = reader.data_version()
            assert before == (0, 0)
            assert after == (len(serial_records), 1)

    def test_merge_bumps_both_axes(self, spec, serial_records, tmp_path):
        shard_path = tmp_path / "shard.db"
        with SweepDatabase(shard_path) as shard:
            spec_key = shard.ensure_sweep(spec)
            shard.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
        with SweepDatabase(tmp_path / "target.db") as target:
            before = target.data_version()
            with SweepDatabase.open_reader(shard_path) as shard:
                target.merge(shard)
            after = target.data_version()
        assert before == (0, 0)
        assert after == (len(serial_records), 1)

    def test_idempotent_re_merge_leaves_the_version_unchanged(
        self, spec, serial_records, tmp_path
    ):
        """A merge that inserts nothing adds no run row either, so the cache
        key the serve layer derives from the version stays warm."""
        shard_path = tmp_path / "shard.db"
        with SweepDatabase(shard_path) as shard:
            spec_key = shard.ensure_sweep(spec)
            shard.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase.open_reader(shard_path) as shard:
                target.merge(shard)
                first = target.data_version()
                target.merge(shard)
                assert target.data_version() == first

    def test_history_carrying_merge_bumps_runs_by_the_shard_run_count(
        self, spec, serial_records, tmp_path
    ):
        shard_path = tmp_path / "shard.db"
        half = len(serial_records) // 2
        with SweepDatabase(shard_path) as shard:
            spec_key = shard.ensure_sweep(spec)
            shard.record_run(spec_key, serial_records[:half], executed=half, skipped=0)
            shard.record_run(
                spec_key,
                serial_records[half:],
                executed=len(serial_records) - half,
                skipped=0,
            )
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase.open_reader(shard_path) as shard:
                target.merge(shard, carry_history=True)
                records, runs = target.data_version()
                assert records == len(serial_records)
                assert runs == 2
                # Idempotent: carrying the same shard again changes nothing.
                target.merge(shard, carry_history=True)
                assert target.data_version() == (records, runs)


class TestOpenReader:
    def test_reader_sees_writer_content(self, spec, serial_records, tmp_path):
        path = tmp_path / "sweeps.db"
        with SweepDatabase(path) as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
        with SweepDatabase.open_reader(path) as reader:
            assert reader.read_only
            assert reader.records(spec_key) == serial_records

    def test_reader_refuses_a_missing_store(self, tmp_path):
        with pytest.raises(ResultStoreError, match="cannot open"):
            SweepDatabase.open_reader(tmp_path / "absent.db")
        # And it must not have created the file as a side effect.
        assert not (tmp_path / "absent.db").exists()

    def test_reader_refuses_a_non_store_file(self, tmp_path):
        bogus = tmp_path / "bogus.db"
        bogus.write_bytes(b"not a sqlite store")
        with pytest.raises(ResultStoreError):
            SweepDatabase.open_reader(bogus)

    def test_write_operations_raise_through_a_reader(
        self, spec, serial_records, tmp_path
    ):
        path = tmp_path / "sweeps.db"
        with SweepDatabase(path) as db:
            spec_key = db.ensure_sweep(spec)
        with SweepDatabase.open_reader(path) as reader:
            with pytest.raises(ResultStoreError, match="read-only"):
                reader.ensure_sweep(spec)
            with pytest.raises(ResultStoreError, match="read-only"):
                reader.record_run(spec_key, serial_records, executed=1, skipped=0)
            with pytest.raises(ResultStoreError, match="read-only"):
                reader.merge(reader)
            with pytest.raises(ResultStoreError, match="read-only"):
                reader.merge_all([reader])

    def test_reader_export_matches_writer_export(
        self, spec, serial_records, tmp_path
    ):
        path = tmp_path / "sweeps.db"
        with SweepDatabase(path) as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
            via_writer = db.export_document(tmp_path / "writer.json")
        with SweepDatabase.open_reader(path) as reader:
            via_reader = reader.export_document(tmp_path / "reader.json")
        assert via_reader.read_bytes() == via_writer.read_bytes()
