"""Tests of the fault-tolerant dispatch layer (state machine, heartbeats,
retry/requeue, launchers) underneath the shard-worker backends."""

import os
import sys
import textwrap

import pytest

from repro.errors import ConfigurationError, OrchestrationError
from repro.runner.backends import WorkerPlan
from repro.runner.dispatch import (
    ATTEMPT_ENV,
    HEARTBEAT_ENV,
    LAUNCHERS,
    SHARD_ENV,
    DispatchPolicy,
    WORKER_TRANSITIONS,
    WorkerState,
    WorkerSupervisor,
    _Attempt,
    beat_heartbeat,
    failure_detail,
    local_launcher,
    log_tail,
    make_launcher,
    ssh_launcher,
)


def make_plan(tmp_path, index=0, count=1, argv=("true",)):
    return WorkerPlan(
        shard_index=index,
        shard_count=count,
        spec_path=tmp_path / "spec.json",
        store_path=tmp_path / f"shard-{index}-of-{count}.db",
        log_path=tmp_path / f"shard-{index}.log",
        argv=tuple(argv),
        heartbeat_path=tmp_path / f"shard-{index}.heartbeat",
    )


def python_command(body):
    """A worker command running ``body`` (dedented) in this interpreter."""
    return (sys.executable, "-c", textwrap.dedent(body))


#: A fast supervision cadence so the retry tests stay subsecond.
FAST = dict(poll_interval=0.01, retry_backoff=0.01, backoff_jitter=0.0)


class TestStateMachine:
    def test_every_state_has_a_transition_row(self):
        assert set(WORKER_TRANSITIONS) == set(WorkerState)

    def test_terminal_states_have_no_successors(self):
        for state in (
            WorkerState.FINISHED,
            WorkerState.FAILED,
            WorkerState.TIMED_OUT,
            WorkerState.LOST,
        ):
            assert state.is_terminal
            assert not WORKER_TRANSITIONS[state]
        assert WorkerState.FINISHED.is_success
        assert not WorkerState.FAILED.is_success

    def test_live_states_are_not_terminal(self):
        for state in (WorkerState.NOT_READY, WorkerState.READY, WorkerState.RUNNING):
            assert not state.is_terminal

    def test_legal_walk(self, tmp_path):
        attempt = _Attempt(make_plan(tmp_path), 1, "local/0")
        assert attempt.state is WorkerState.NOT_READY
        attempt.advance(WorkerState.READY)
        attempt.advance(WorkerState.RUNNING)
        attempt.advance(WorkerState.FINISHED)
        assert attempt.state.is_terminal

    def test_illegal_transition_raises(self, tmp_path):
        attempt = _Attempt(make_plan(tmp_path), 1, "local/0")
        with pytest.raises(OrchestrationError, match="illegal worker state transition"):
            attempt.advance(WorkerState.RUNNING)  # skips Ready
        attempt.advance(WorkerState.READY)
        attempt.advance(WorkerState.FINISHED)
        with pytest.raises(OrchestrationError, match="Finished -> Running"):
            attempt.advance(WorkerState.RUNNING)  # terminal states are final


class TestDispatchPolicy:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"max_retries": -1}, "max_retries"),
            ({"retry_backoff": -0.1}, "retry_backoff"),
            ({"backoff_jitter": 1.5}, "backoff_jitter"),
            ({"heartbeat_timeout": 0}, "heartbeat_timeout"),
            ({"attempt_timeout": 0}, "attempt_timeout"),
            ({"poll_interval": 0}, "poll_interval"),
            ({"host_quarantine_after": 0}, "host_quarantine_after"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            DispatchPolicy(**kwargs)

    def test_backoff_is_deterministic(self):
        policy = DispatchPolicy(retry_backoff=0.5, backoff_jitter=0.25)
        assert policy.backoff_delay(0, 2) == policy.backoff_delay(0, 2)
        assert policy.backoff_delay(0, 2) != policy.backoff_delay(1, 2)

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = DispatchPolicy(retry_backoff=1.0, backoff_jitter=0.25)
        for attempt, base in ((2, 1.0), (3, 2.0), (4, 4.0)):
            delay = policy.backoff_delay(7, attempt)
            assert base <= delay <= base * 1.25

    def test_zero_jitter_is_exact(self):
        policy = DispatchPolicy(retry_backoff=0.5, backoff_jitter=0.0)
        assert policy.backoff_delay(3, 2) == 0.5
        assert policy.backoff_delay(3, 3) == 1.0


class TestLaunchers:
    def test_registry(self):
        assert set(LAUNCHERS) == {"local", "ssh"}
        assert make_launcher("local") is local_launcher
        assert make_launcher("ssh") is ssh_launcher

    def test_unknown_launcher_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown launcher"):
            make_launcher("teleport")

    def test_local_launcher_passes_argv_through(self):
        argv = ["python", "-m", "repro.cli", "sweep"]
        assert local_launcher("local/0", argv, {"K": "V"}) == argv

    def test_ssh_launcher_wraps_and_inlines_env(self):
        command = ssh_launcher(
            "node-1",
            ["python", "-m", "repro.cli"],
            {HEARTBEAT_ENV: "/tmp/a b.heartbeat", SHARD_ENV: "0"},
        )
        assert command[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert command[3] == "node-1"
        remote = command[4]
        # env K=V sorted, shell-quoted, then the worker argv.
        assert remote.startswith("env ")
        assert f"{SHARD_ENV}=0" in remote
        assert f"'{HEARTBEAT_ENV}=/tmp/a b.heartbeat'" in remote
        # sorted env: DISPATCH_SHARD before HEARTBEAT_FILE
        assert remote.index(SHARD_ENV) < remote.index(HEARTBEAT_ENV)
        assert remote.endswith("python -m repro.cli")


class TestHeartbeat:
    def test_beat_is_a_noop_without_the_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(HEARTBEAT_ENV, raising=False)
        beat_heartbeat()  # must not raise or create anything
        assert list(tmp_path.iterdir()) == []

    def test_beat_touches_the_named_file(self, monkeypatch, tmp_path):
        target = tmp_path / "w.heartbeat"
        monkeypatch.setenv(HEARTBEAT_ENV, str(target))
        beat_heartbeat()
        assert target.exists()

    def test_failed_touch_is_swallowed(self, monkeypatch, tmp_path):
        monkeypatch.setenv(HEARTBEAT_ENV, str(tmp_path / "no" / "such" / "dir" / "f"))
        beat_heartbeat()  # the sweep must not die over a lost beat


class TestFailureDetail:
    def outcome(self, tmp_path, state, returncode):
        from repro.runner.dispatch import AttemptRecord, ShardOutcome

        plan = make_plan(tmp_path)
        record = AttemptRecord(
            shard_index=0,
            attempt=1,
            host="local/0",
            state=state,
            returncode=returncode,
            duration=0.5,
            heartbeats=2,
            last_heartbeat_age=1.25,
        )
        return ShardOutcome(plan=plan, state=state, returncode=returncode, attempts=(record,))

    def test_failed_message_includes_exit_code_and_heartbeat_age(self, tmp_path):
        (tmp_path / "shard-0.log").write_text("boom happened\n", encoding="utf-8")
        detail = failure_detail(self.outcome(tmp_path, WorkerState.FAILED, 3))
        assert "exited 3" in detail
        assert "last heartbeat 1.2s before the end" in detail
        assert "boom happened" in detail

    def test_timed_out_message_names_the_budget(self, tmp_path):
        detail = failure_detail(
            self.outcome(tmp_path, WorkerState.TIMED_OUT, None), attempt_timeout=2.5
        )
        assert "still running after 2.5s; killed" in detail

    def test_lost_message_names_the_stale_heartbeat(self, tmp_path):
        detail = failure_detail(self.outcome(tmp_path, WorkerState.LOST, None))
        assert "declared lost" in detail
        assert "heartbeat went stale" in detail

    def test_no_heartbeat_and_no_log(self, tmp_path):
        from repro.runner.dispatch import ShardOutcome

        outcome = ShardOutcome(
            plan=make_plan(tmp_path),
            state=WorkerState.FAILED,
            returncode=1,
            attempts=(),
        )
        detail = failure_detail(outcome)
        assert "no heartbeat observed" in detail
        assert "(no log)" in detail

    def test_log_tail_flattens_and_limits(self, tmp_path):
        log = tmp_path / "w.log"
        log.write_text("a\nb\n" + "x" * 500, encoding="utf-8")
        tail = log_tail(log, limit=10)
        assert tail == "x" * 10
        assert log_tail(tmp_path / "missing.log") == "(no log)"


class TestSupervisor:
    def test_rejects_empty_plans_and_hosts(self, tmp_path):
        with pytest.raises(ConfigurationError, match="plan list is empty"):
            WorkerSupervisor([], hosts=["h"])
        with pytest.raises(ConfigurationError, match="without hosts"):
            WorkerSupervisor([make_plan(tmp_path)], hosts=[])

    def test_successful_worker_finishes_with_one_attempt(self, tmp_path):
        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(**FAST),
            worker_command=lambda p: python_command("print('done')"),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FINISHED
        assert outcome.succeeded
        assert outcome.returncode == 0
        assert outcome.retries == 0
        assert [a.state for a in outcome.attempts] == [WorkerState.FINISHED]
        assert "done" in plan.log_path.read_text(encoding="utf-8")

    def test_failed_worker_retries_then_succeeds(self, tmp_path):
        marker = tmp_path / "second-attempt"
        body = f"""
            import pathlib, sys
            marker = pathlib.Path({str(marker)!r})
            if marker.exists():
                sys.stdout.write("recovered")
            else:
                marker.touch()
                raise SystemExit(3)
        """
        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(max_retries=2, **FAST),
            worker_command=lambda p: python_command(body),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FINISHED
        assert outcome.retries == 1
        assert [a.state for a in outcome.attempts] == [
            WorkerState.FAILED,
            WorkerState.FINISHED,
        ]
        assert outcome.attempts[0].returncode == 3
        log = plan.log_path.read_text(encoding="utf-8")
        assert "=== attempt 1 on local/0 ===" in log
        assert "=== attempt 2 on local/0 ===" in log

    def test_exhausted_retries_label_the_orphaned_store(self, tmp_path):
        plan = make_plan(tmp_path)
        plan.store_path.write_bytes(b"partial shard bytes")
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(max_retries=1, **FAST),
            worker_command=lambda p: python_command("raise SystemExit(7)"),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FAILED
        assert not outcome.succeeded
        assert outcome.returncode == 7
        assert len(outcome.attempts) == 2
        label = plan.store_path.with_name(plan.store_path.name + ".orphaned.txt")
        text = label.read_text(encoding="utf-8")
        assert "failed permanently" in text
        assert "Failed" in text
        assert "attempts:" in text

    def test_hung_worker_times_out(self, tmp_path):
        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(attempt_timeout=0.3, **FAST),
            worker_command=lambda p: python_command("import time; time.sleep(60)"),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.TIMED_OUT
        assert len(outcome.attempts) == 1

    def test_stale_heartbeat_declares_the_worker_lost(self, tmp_path):
        body = f"""
            import os, pathlib, time
            pathlib.Path(os.environ[{HEARTBEAT_ENV!r}]).touch()
            time.sleep(60)
        """
        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(heartbeat_timeout=0.3, **FAST),
            worker_command=lambda p: python_command(body),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.LOST
        assert outcome.attempts[0].heartbeats >= 1
        assert outcome.attempts[0].last_heartbeat_age is not None

    def test_worker_that_never_beats_is_not_declared_lost(self, tmp_path):
        """Staleness needs an observed beat: a command that never beats
        (custom worker_command) is governed by the attempt timeout only."""
        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(heartbeat_timeout=0.05, **FAST),
            worker_command=lambda p: python_command("import time; time.sleep(0.4)"),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FINISHED

    def test_requeue_lands_on_the_surviving_host(self, tmp_path):
        """A host that keeps failing is quarantined; the retry runs on the
        other slot."""
        bad_marker = tmp_path / "bad-ran"
        body = f"""
            import os, pathlib, sys
            if os.environ["WORKER_HOST_SLOT"] == "bad":
                pathlib.Path({str(bad_marker)!r}).touch()
                raise SystemExit(9)
            sys.stdout.write("ok")
        """

        def launcher(host, argv, env):
            return [argv[0], "-c", argv[2].replace("WORKER_HOST_SLOT_VALUE", host)]

        def command(plan):
            return python_command(
                body.replace(
                    'os.environ["WORKER_HOST_SLOT"]', '"WORKER_HOST_SLOT_VALUE"'
                )
            )

        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["bad", "good"],
            policy=DispatchPolicy(max_retries=3, host_quarantine_after=1, **FAST),
            launcher=launcher,
            worker_command=command,
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FINISHED
        hosts = [attempt.host for attempt in outcome.attempts]
        assert hosts[0] == "bad"
        assert hosts[-1] == "good"

    def test_dispatch_env_reaches_the_worker(self, tmp_path):
        out_file = tmp_path / "env.txt"
        body = f"""
            import os, pathlib
            pathlib.Path({str(out_file)!r}).write_text(
                ",".join([os.environ[{SHARD_ENV!r}], os.environ[{ATTEMPT_ENV!r}]]),
                encoding="utf-8",
            )
        """
        plan = make_plan(tmp_path, index=0, count=1)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(**FAST),
            worker_command=lambda p: python_command(body),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FINISHED
        assert out_file.read_text(encoding="utf-8") == "0,1"

    def test_heartbeat_files_are_cleaned_up_on_success(self, tmp_path):
        body = f"""
            import os, pathlib
            pathlib.Path(os.environ[{HEARTBEAT_ENV!r}]).touch()
        """
        plan = make_plan(tmp_path)
        supervisor = WorkerSupervisor(
            [plan],
            hosts=["local/0"],
            policy=DispatchPolicy(**FAST),
            worker_command=lambda p: python_command(body),
        )
        (outcome,) = supervisor.run()
        assert outcome.state is WorkerState.FINISHED
        assert not plan.heartbeat_path.exists()

    def test_retry_argv_appends_resume(self, tmp_path):
        plan = make_plan(tmp_path, argv=("python", "-m", "repro.cli", "sweep"))
        supervisor = WorkerSupervisor([plan], hosts=["local/0"])
        assert supervisor._attempt_argv(plan, 1) == list(plan.argv)
        assert supervisor._attempt_argv(plan, 2) == [*plan.argv, "--resume"]
        resumed = make_plan(tmp_path, argv=("repro", "--resume"))
        assert supervisor._attempt_argv(resumed, 3) == list(resumed.argv)

    def test_corrupt_store_is_quarantined_before_a_retry(self, tmp_path):
        plan = make_plan(tmp_path)
        plan.store_path.write_bytes(b"this is not a sqlite database at all")
        supervisor = WorkerSupervisor([plan], hosts=["local/0"])
        supervisor._reset_corrupt_store(plan, 2)
        assert not plan.store_path.exists()
        quarantined = plan.store_path.with_name(
            plan.store_path.name + ".corrupt-attempt1"
        )
        assert quarantined.read_bytes() == b"this is not a sqlite database at all"
