"""Tests of the declarative sweep specification."""

import pytest

from repro.errors import ConfigurationError
from repro.runner.spec import (
    SweepSpec,
    canonical_scheduler_name,
    make_scheduler,
    power_series_label,
    scheduler_spec_name,
)
from repro.schedule.greedy import GreedyScheduler
from repro.schedule.variants import FastestCompletionScheduler


def small_spec(**overrides):
    parameters = dict(
        name="test",
        systems=("d695_leon",),
        processor_counts=(0, 2),
        power_limits={"no power limit": None, "50% power limit": 0.5},
    )
    parameters.update(overrides)
    return SweepSpec(**parameters)


class TestSchedulerRegistry:
    def test_canonical_names(self):
        assert canonical_scheduler_name("greedy") == "greedy"
        assert canonical_scheduler_name("greedy-first-available") == "greedy"
        assert canonical_scheduler_name("lookahead") == "fastest-completion"
        assert canonical_scheduler_name("Fastest-Completion") == "fastest-completion"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            canonical_scheduler_name("simulated-annealing")

    def test_make_scheduler(self):
        assert isinstance(make_scheduler("greedy"), GreedyScheduler)
        assert isinstance(make_scheduler("lookahead"), FastestCompletionScheduler)

    def test_scheduler_spec_name(self):
        assert scheduler_spec_name(None) == "greedy"
        assert scheduler_spec_name(GreedyScheduler()) == "greedy"
        assert scheduler_spec_name(FastestCompletionScheduler()) == "fastest-completion"

    def test_scheduler_with_custom_priority_rejected(self):
        """Instance state a spec cannot record must fail loudly, not be
        silently replaced by the default policy."""

        def custom_priority(cores, interfaces, network):
            raise NotImplementedError

        with pytest.raises(ConfigurationError, match="priority factory"):
            scheduler_spec_name(GreedyScheduler(priority_factory=custom_priority))


class TestPowerSeriesLabel:
    def test_paper_labels(self):
        assert power_series_label(None) == "no power limit"
        assert power_series_label(0.5) == "50% power limit"
        assert power_series_label(0.75) == "75% power limit"


class TestPointExpansion:
    def test_point_count_and_order(self):
        spec = small_spec()
        points = spec.points()
        assert len(points) == spec.point_count == 4
        assert [point.index for point in points] == [0, 1, 2, 3]
        # Innermost axis (processor count) varies fastest.
        assert [(p.power_label, p.reused_processors) for p in points] == [
            ("no power limit", 0),
            ("no power limit", 2),
            ("50% power limit", 0),
            ("50% power limit", 2),
        ]

    def test_expansion_is_deterministic(self):
        assert small_spec().points() == small_spec().points()

    def test_point_labels(self):
        spec = small_spec(processor_counts=(0, 4, None))
        labels = [point.label for point in spec.points()[:3]]
        assert labels == ["noproc", "4proc", "allproc"]

    def test_scheduler_axis(self):
        spec = small_spec(schedulers=("greedy", "lookahead"), processor_counts=(0,))
        schedulers = {point.scheduler for point in spec.points()}
        assert schedulers == {"greedy", "fastest-completion"}


class TestValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown paper system"):
            small_spec(systems=("d695_arm",))

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(systems=())
        with pytest.raises(ConfigurationError):
            small_spec(processor_counts=())
        with pytest.raises(ConfigurationError):
            small_spec(power_limits=())

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            small_spec(processor_counts=(-1,))

    def test_non_positive_power_fraction_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            small_spec(power_limits={"zero": 0.0})

    def test_non_positive_flit_width_rejected(self):
        with pytest.raises(ConfigurationError, match="flit widths"):
            small_spec(flit_widths=(0,))


class TestSerialisation:
    def test_roundtrip(self):
        spec = small_spec(schedulers=("greedy", "fastest-completion"))
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_content_key_stable(self):
        assert small_spec().content_key() == small_spec().content_key()

    def test_content_key_differs_on_change(self):
        assert small_spec().content_key() != small_spec(flit_widths=(16,)).content_key()

    def test_from_dict_missing_field(self):
        with pytest.raises(ConfigurationError, match="missing field"):
            SweepSpec.from_dict({"systems": ["d695_leon"]})


class TestShard:
    def grid(self):
        """An 8-point grid (4 reuse levels x 2 power series)."""
        return small_spec(processor_counts=(0, 2, 4, 6))

    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    def test_shards_partition_the_grid(self, strategy):
        """Shards are disjoint and their union is the full point sequence,
        with every point keeping its global index."""
        spec = self.grid()
        shards = [spec.shard(i, 3, strategy=strategy) for i in range(3)]
        merged = sorted((p for shard in shards for p in shard), key=lambda p: p.index)
        assert tuple(merged) == spec.points()
        indices = [p.index for shard in shards for p in shard]
        assert len(indices) == len(set(indices))

    def test_contiguous_blocks_balance_the_remainder(self):
        spec = self.grid()
        shards = [spec.shard(i, 3) for i in range(3)]
        assert [len(s) for s in shards] == [3, 3, 2]
        assert [p.index for p in shards[0]] == [0, 1, 2]
        assert [p.index for p in shards[2]] == [6, 7]

    def test_strided_deals_round_robin(self):
        spec = self.grid()
        assert [p.index for p in spec.shard(1, 3, strategy="strided")] == [1, 4, 7]

    def test_single_shard_is_the_full_grid(self):
        spec = self.grid()
        assert spec.shard(0, 1) == spec.points()

    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    def test_more_shards_than_points_leaves_trailing_shards_empty(self, strategy):
        spec = small_spec(processor_counts=(0,), power_limits={"no power limit": None})
        shards = [spec.shard(i, 3, strategy=strategy) for i in range(3)]
        assert [len(s) for s in shards] == [1, 0, 0]

    def test_shards_are_deterministic(self):
        spec = self.grid()
        assert spec.shard(1, 3) == self.grid().shard(1, 3)

    def test_non_positive_count_rejected(self):
        with pytest.raises(ConfigurationError, match="shard count"):
            self.grid().shard(0, 0)

    @pytest.mark.parametrize("index", [-1, 3, 7])
    def test_out_of_range_index_rejected(self, index):
        with pytest.raises(ConfigurationError, match="out of range"):
            self.grid().shard(index, 3)

    def test_out_of_range_index_message_states_the_rule(self):
        """An index >= count must name the constraint, not just reject."""
        with pytest.raises(ConfigurationError, match=r"0 <= shard_index < shard_count"):
            self.grid().shard(3, 3)

    @pytest.mark.parametrize("strategy", ["contiguous", "strided"])
    def test_oversized_count_still_partitions_the_grid(self, strategy):
        """shard_count greater than the point count yields valid empty
        shards whose union is still exactly the grid."""
        spec = self.grid()  # 8 points
        shards = [spec.shard(i, 13, strategy=strategy) for i in range(13)]
        merged = sorted((p for shard in shards for p in shard), key=lambda p: p.index)
        assert tuple(merged) == spec.points()
        assert sum(1 for shard in shards if not shard) == 13 - 8

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="shard strategy"):
            self.grid().shard(0, 2, strategy="random")


class TestPointSelection:
    def grid(self):
        """An 8-point grid (4 reuse levels x 2 power series)."""
        return small_spec(processor_counts=(0, 2, 4, 6))

    def test_subset_keeps_global_indices_ascending(self):
        spec = self.grid()
        points = spec.points_at([5, 0, 3])
        assert [p.index for p in points] == [0, 3, 5]
        assert points == tuple(spec.points()[i] for i in (0, 3, 5))

    def test_indices_deduplicated(self):
        assert [p.index for p in self.grid().points_at([2, 2, 2])] == [2]

    def test_any_partition_unions_to_the_grid(self):
        """The cost-based dispatch contract: arbitrary index groups cover
        the grid exactly like the built-in shard strategies."""
        spec = self.grid()
        groups = ([7, 1], [0, 4, 6], [2, 3, 5])
        merged = sorted(
            (p for group in groups for p in spec.points_at(group)),
            key=lambda p: p.index,
        )
        assert tuple(merged) == spec.points()

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one index"):
            self.grid().points_at([])

    @pytest.mark.parametrize("index", [-1, 8, 99])
    def test_out_of_range_index_rejected(self, index):
        with pytest.raises(ConfigurationError, match="out of range"):
            self.grid().points_at([0, index])
