"""Tests of the schema-versioned sweep result store."""

import json

import pytest

from repro.errors import ResultStoreError
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec
from repro.runner.store import (
    SCHEMA_VERSION,
    dump_sweeps,
    load_sweeps,
    save_sweeps,
)


@pytest.fixture(scope="module")
def executed():
    spec = SweepSpec(
        name="store-test",
        systems=("d695_plasma",),
        processor_counts=(0, 6),
        power_limits={"no power limit": None},
    )
    outcomes = SweepRunner(jobs=1).run(spec)
    return spec, outcomes


class TestRoundtrip:
    def test_save_and_load(self, executed, tmp_path):
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        (stored,) = load_sweeps(path)
        assert stored.spec == spec
        assert stored.spec_key == spec.content_key()
        assert len(stored.records) == len(outcomes)
        for record, outcome in zip(stored.records, outcomes):
            assert record["makespan"] == outcome.makespan
            assert record["index"] == outcome.point.index

    def test_document_shape(self, executed):
        spec, outcomes = executed
        document = json.loads(dump_sweeps([(spec, outcomes)]))
        assert document["schema_version"] == SCHEMA_VERSION
        assert len(document["sweeps"]) == 1

    def test_records_sorted_by_index(self, executed):
        spec, outcomes = executed
        document = json.loads(dump_sweeps([(spec, list(reversed(outcomes)))]))
        indices = [record["index"] for record in document["sweeps"][0]["records"]]
        assert indices == sorted(indices)


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="cannot read"):
            load_sweeps(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ResultStoreError, match="not valid JSON"):
            load_sweeps(path)

    def test_wrong_schema_version(self, executed, tmp_path):
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        document = json.loads(path.read_text(encoding="utf-8"))
        document["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ResultStoreError, match="schema version"):
            load_sweeps(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION, "sweeps": [{"spec": {}}]}),
            encoding="utf-8",
        )
        with pytest.raises(ResultStoreError, match="malformed|missing"):
            load_sweeps(path)

    def test_spec_key_mismatch_rejected(self, executed, tmp_path):
        """A stored spec_key that does not hash back to the stored spec must
        be refused: resume decisions keyed on it would skip the wrong
        points."""
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        document = json.loads(path.read_text(encoding="utf-8"))
        document["sweeps"][0]["spec_key"] = "f" * 64
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ResultStoreError, match="hashes to"):
            load_sweeps(path)

    def test_absent_spec_key_backfilled(self, executed, tmp_path):
        """Pre-spec_key documents (the field is optional) still load."""
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        document = json.loads(path.read_text(encoding="utf-8"))
        del document["sweeps"][0]["spec_key"]
        path.write_text(json.dumps(document), encoding="utf-8")
        (stored,) = load_sweeps(path)
        assert stored.spec_key == spec.content_key()


class TestAtomicWrites:
    def test_crash_mid_write_leaves_previous_document(
        self, executed, tmp_path, monkeypatch
    ):
        """Simulated crash during save: the staged temp file never reaches the
        destination, so the previous document stays loadable."""
        import os as os_module

        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        before = path.read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os_module, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            save_sweeps(path, [(spec, outcomes[:1])])
        monkeypatch.undo()

        assert path.read_bytes() == before
        (stored,) = load_sweeps(path)
        assert len(stored.records) == len(outcomes)

    def test_leftover_partial_temp_file_is_ignored(self, executed, tmp_path):
        """A partial ``*.tmp`` staging file left behind by a hard crash must
        not shadow or corrupt the real document."""
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        partial = tmp_path / "results.json.abc123.tmp"
        partial.write_text('{"schema_version": 1, "sweeps": [', encoding="utf-8")
        (stored,) = load_sweeps(path)
        assert len(stored.records) == len(outcomes)

    def test_written_file_respects_umask(self, executed, tmp_path):
        """The staged temp file is 0600; the destination must get the usual
        umask-derived mode, like a plain write_text would."""
        import os as os_module

        spec, outcomes = executed
        umask = os_module.umask(0)
        os_module.umask(umask)
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)

    def test_save_stages_in_target_directory(self, executed, tmp_path, monkeypatch):
        """The temp file must live next to the destination (same filesystem),
        otherwise os.replace would not be atomic."""
        import repro.runner.atomic as atomic_module

        spec, outcomes = executed
        staged_dirs = []
        original = atomic_module.tempfile.NamedTemporaryFile

        def recording(*args, **kwargs):
            staged_dirs.append(kwargs.get("dir"))
            return original(*args, **kwargs)

        monkeypatch.setattr(atomic_module.tempfile, "NamedTemporaryFile", recording)
        save_sweeps(tmp_path / "deep" / "results.json", [(spec, outcomes)])
        assert staged_dirs == [tmp_path / "deep"]


class TestAnalysisLoader:
    def test_load_sweep_records(self, executed, tmp_path):
        from repro.analysis.sweeps import load_sweep_records, records_table

        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        records = load_sweep_records(path)
        assert len(records) == len(outcomes)
        table = records_table(records)
        assert "d695_plasma" in table
        assert "noproc" in table
