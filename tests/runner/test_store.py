"""Tests of the schema-versioned sweep result store."""

import json

import pytest

from repro.errors import ResultStoreError
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec
from repro.runner.store import (
    SCHEMA_VERSION,
    dump_sweeps,
    load_sweeps,
    save_sweeps,
)


@pytest.fixture(scope="module")
def executed():
    spec = SweepSpec(
        name="store-test",
        systems=("d695_plasma",),
        processor_counts=(0, 6),
        power_limits={"no power limit": None},
    )
    outcomes = SweepRunner(jobs=1).run(spec)
    return spec, outcomes


class TestRoundtrip:
    def test_save_and_load(self, executed, tmp_path):
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        (stored,) = load_sweeps(path)
        assert stored.spec == spec
        assert stored.spec_key == spec.content_key()
        assert len(stored.records) == len(outcomes)
        for record, outcome in zip(stored.records, outcomes):
            assert record["makespan"] == outcome.makespan
            assert record["index"] == outcome.point.index

    def test_document_shape(self, executed):
        spec, outcomes = executed
        document = json.loads(dump_sweeps([(spec, outcomes)]))
        assert document["schema_version"] == SCHEMA_VERSION
        assert len(document["sweeps"]) == 1

    def test_records_sorted_by_index(self, executed):
        spec, outcomes = executed
        document = json.loads(dump_sweeps([(spec, list(reversed(outcomes)))]))
        indices = [record["index"] for record in document["sweeps"][0]["records"]]
        assert indices == sorted(indices)


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="cannot read"):
            load_sweeps(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ResultStoreError, match="not valid JSON"):
            load_sweeps(path)

    def test_wrong_schema_version(self, executed, tmp_path):
        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        document = json.loads(path.read_text(encoding="utf-8"))
        document["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ResultStoreError, match="schema version"):
            load_sweeps(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION, "sweeps": [{"spec": {}}]}),
            encoding="utf-8",
        )
        with pytest.raises(ResultStoreError, match="malformed|missing"):
            load_sweeps(path)


class TestAnalysisLoader:
    def test_load_sweep_records(self, executed, tmp_path):
        from repro.analysis.sweeps import load_sweep_records, records_table

        spec, outcomes = executed
        path = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        records = load_sweep_records(path)
        assert len(records) == len(outcomes)
        table = records_table(records)
        assert "d695_plasma" in table
        assert "noproc" in table
