"""Tests of the sqlite-backed sweep store and the incremental resume path."""

import sqlite3

import pytest

from repro.errors import ResultStoreError
from repro.runner.db import DB_SCHEMA_VERSION, MergeReport, SweepDatabase
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec
from repro.runner.store import save_sweeps


@pytest.fixture(scope="module")
def spec():
    return SweepSpec(
        name="db-grid",
        systems=("d695_plasma",),
        processor_counts=(0, 2, 6),
        power_limits={"no power limit": None, "50% power limit": 0.5},
    )


@pytest.fixture(scope="module")
def serial_records(spec):
    """Records of a from-scratch serial full run — the equivalence baseline."""
    return [outcome.record() for outcome in SweepRunner(jobs=1).run(spec)]


class TestRoundtrip:
    def test_records_round_trip(self, spec, serial_records, tmp_path):
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(
                spec_key, serial_records, executed=len(serial_records), skipped=0
            )
            assert db.records(spec_key) == serial_records
            assert db.record_count() == len(serial_records)

    def test_stored_sweep_integrity(self, spec, serial_records, tmp_path):
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(spec_key, serial_records, executed=6, skipped=0)
            stored = db.stored_sweep(spec_key)
            assert stored.spec == spec
            assert stored.spec_key == spec.content_key()
            assert list(stored.records) == serial_records

    def test_reopen_persists(self, spec, serial_records, tmp_path):
        path = tmp_path / "sweeps.db"
        with SweepDatabase(path) as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(spec_key, serial_records, executed=6, skipped=0)
        with SweepDatabase(path) as reopened:
            assert reopened.records(spec_key) == serial_records

    def test_wal_journaling(self, tmp_path):
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            row = db._connection.execute("PRAGMA journal_mode").fetchone()
            assert row[0] == "wal"

    def test_unknown_spec_key_rejected(self, tmp_path):
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            with pytest.raises(ResultStoreError, match="no sweep"):
                db.stored_sweep("0" * 64)


class TestIntegrityChecks:
    def test_not_a_sqlite_file(self, tmp_path):
        path = tmp_path / "bogus.db"
        path.write_text("definitely not sqlite", encoding="utf-8")
        with pytest.raises(ResultStoreError, match="not a usable sqlite"):
            SweepDatabase(path)

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "sweeps.db"
        SweepDatabase(path).close()
        connection = sqlite3.connect(path)
        with connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(DB_SCHEMA_VERSION + 1),),
            )
        connection.close()
        with pytest.raises(ResultStoreError, match="schema version"):
            SweepDatabase(path)

    def test_tampered_spec_key_rejected(self, spec, serial_records, tmp_path):
        """A stored spec that no longer hashes to its key must be refused:
        a stale key would drive resume to skip the wrong points."""
        path = tmp_path / "sweeps.db"
        with SweepDatabase(path) as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(spec_key, serial_records, executed=6, skipped=0)
        connection = sqlite3.connect(path)
        with connection:
            connection.execute(
                "UPDATE sweeps SET spec_json = replace(spec_json, 'db-grid', 'other')"
            )
        connection.close()
        with SweepDatabase(path) as db:
            with pytest.raises(ResultStoreError, match="hashes to"):
                db.stored_sweep(spec_key)


class TestResume:
    def test_resume_skips_existing_points(self, spec, tmp_path):
        runner = SweepRunner(jobs=1)
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            first = runner.run_stored(spec, db, resume=True)
            assert first.executed_count == spec.point_count
            assert first.skipped_count == 0
            second = runner.run_stored(spec, db, resume=True)
            assert second.executed_count == 0
            assert second.skipped_count == spec.point_count
            assert second.records == first.records

    def test_interrupted_sweep_resumes_only_missing(self, spec, serial_records, tmp_path):
        """Seed the store with a partial run (as an interrupt would leave it);
        resume must execute exactly the missing points and converge on the
        serial full-run records."""
        partial = [r for r in serial_records if r["index"] in (0, 2, 5)]
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(spec_key, partial, executed=len(partial), skipped=0)
            report = SweepRunner(jobs=1).run_stored(spec, db, resume=True)
            assert report.executed_indices == (1, 3, 4)
            assert report.skipped_indices == (0, 2, 5)
            assert list(report.records) == serial_records

    def test_parallel_resumed_equals_serial_full(self, spec, serial_records, tmp_path):
        """A parallel resumed run over a partial store must be record-identical
        to a from-scratch serial run — the PR's acceptance criterion."""
        partial = [r for r in serial_records if r["index"] % 2 == 0]
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            spec_key = db.ensure_sweep(spec)
            db.record_run(spec_key, partial, executed=len(partial), skipped=0)
            report = SweepRunner(jobs=2).run_stored(spec, db, resume=True)
            assert report.executed_count == spec.point_count - len(partial)
            assert list(report.records) == serial_records

    def test_without_resume_reexecutes_everything(self, spec, tmp_path):
        runner = SweepRunner(jobs=1)
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            runner.run_stored(spec, db)
            report = runner.run_stored(spec, db)
            assert report.executed_count == spec.point_count
            assert report.skipped_count == 0
            assert db.record_count() == spec.point_count

    def test_resume_does_not_reuse_mismatched_characterization(self, spec, tmp_path):
        """Records written without characterisation (or with a different
        packet count) must not satisfy a characterising resume — reusing
        them would diverge from a from-scratch run."""
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            SweepRunner(jobs=1).run_stored(spec, db)  # characterize=False
            report = SweepRunner(
                jobs=1, characterize=True, packet_count=40
            ).run_stored(spec, db, resume=True)
            assert report.executed_count == spec.point_count
            assert report.skipped_count == 0
            assert all(
                record["characterization"]["packet_count"] == 40
                for record in report.records
            )
            # ...and a matching resume then reuses everything.
            again = SweepRunner(
                jobs=1, characterize=True, packet_count=40
            ).run_stored(spec, db, resume=True)
            assert again.executed_count == 0
            # A different packet count is again incompatible.
            other = SweepRunner(
                jobs=1, characterize=True, packet_count=60
            ).run_stored(spec, db, resume=True)
            assert other.executed_count == spec.point_count

    def test_earlier_runs_stay_in_history(self, spec, tmp_path):
        """Records append per run: re-running a grid must not erase the
        previous run's rows from the history (the makespan trajectory)."""
        runner = SweepRunner(jobs=1)
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            runner.run_stored(spec, db)
            runner.run_stored(spec, db)
            by_run: dict[int, int] = {}
            for row in db.history_rows():
                by_run[row["run_id"]] = by_run.get(row["run_id"], 0) + 1
            assert by_run == {1: spec.point_count, 2: spec.point_count}
            # Current state still reports one record per point.
            assert db.record_count() == spec.point_count

    def test_runs_table_records_counters(self, spec, tmp_path):
        runner = SweepRunner(jobs=1)
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            runner.run_stored(spec, db, resume=True)
            runner.run_stored(spec, db, resume=True)
            first, second = db.runs()
            assert first.executed_points == spec.point_count
            assert first.skipped_points == 0
            assert second.executed_points == 0
            assert second.skipped_points == spec.point_count
            assert second.run_id > first.run_id
            assert first.source == "sweep"


class TestMigration:
    def test_json_to_sqlite_to_json_round_trip(self, spec, tmp_path):
        outcomes = SweepRunner(jobs=1).run(spec)
        document = save_sweeps(tmp_path / "results.json", [(spec, outcomes)])
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            imported = db.import_document(document)
            assert imported == spec.point_count
            exported = db.export_document(tmp_path / "exported.json")
        assert exported.read_bytes() == document.read_bytes()

    def test_import_records_run_source(self, spec, serial_records, tmp_path):
        document = tmp_path / "results.json"
        outcomes = SweepRunner(jobs=1).run(spec)
        save_sweeps(document, [(spec, outcomes)])
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            db.import_document(document)
            (run,) = db.runs()
            assert run.source == "import:results.json"

    def test_export_matches_direct_save(self, spec, tmp_path):
        """Executing into the store then exporting equals saving the outcomes
        as JSON directly — byte for byte."""
        outcomes = SweepRunner(jobs=1).run(spec)
        direct = save_sweeps(tmp_path / "direct.json", [(spec, outcomes)])
        with SweepDatabase(tmp_path / "sweeps.db") as db:
            SweepRunner(jobs=1).run_stored(spec, db)
            exported = db.export_document(tmp_path / "exported.json")
        assert exported.read_bytes() == direct.read_bytes()


class TestMerge:
    @staticmethod
    def _shard_store(spec, path, index, count):
        with SweepDatabase(path) as db:
            SweepRunner(jobs=1).run_shard(spec, db, shard_index=index, shard_count=count)
        return path

    def test_merged_shards_export_byte_identical_to_serial_run(self, tmp_path):
        """The PR's acceptance criterion on the d695 grid: a 3-shard run,
        merged, exports a schema-v1 document byte-identical to the document
        a serial full run writes."""
        from repro.experiments.figure1 import figure1_spec

        spec = figure1_spec("d695_leon")
        serial = save_sweeps(
            tmp_path / "serial.json", [(spec, SweepRunner(jobs=1).run(spec))]
        )
        with SweepDatabase(tmp_path / "merged.db") as merged:
            for index in range(3):
                path = self._shard_store(spec, tmp_path / f"shard-{index}.db", index, 3)
                with SweepDatabase(path) as shard:
                    report = merged.merge(shard)
                assert report.identical == 0
            exported = merged.export_document(tmp_path / "merged.json")
        assert exported.read_bytes() == serial.read_bytes()

    def test_merge_empty_store_is_a_noop(self, spec, serial_records, tmp_path):
        with SweepDatabase(tmp_path / "target.db") as target:
            spec_key = target.ensure_sweep(spec)
            target.record_run(spec_key, serial_records, executed=6, skipped=0)
            with SweepDatabase(tmp_path / "empty.db") as empty:
                report = target.merge(empty)
            assert report == MergeReport(spec_keys=(), inserted=0, identical=0)
            assert target.record_count() == len(serial_records)

    def test_merge_registered_sweep_without_records(self, spec, tmp_path):
        """An empty shard (sweep registered, zero records) still registers
        the sweep in the target but adds no run."""
        with SweepDatabase(tmp_path / "empty-shard.db") as shard:
            shard.ensure_sweep(spec)
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(tmp_path / "empty-shard.db") as shard:
                report = target.merge(shard)
            assert report.spec_keys == (spec.content_key(),)
            assert report.inserted == 0
            assert target.spec_keys() == [spec.content_key()]
            assert target.runs() == []

    def test_merge_identical_overlap_is_idempotent(self, spec, serial_records, tmp_path):
        """Merging the same shard twice changes nothing: overlapping
        byte-identical records are skipped, and no run row is added."""
        shard_path = tmp_path / "shard.db"
        with SweepDatabase(shard_path) as shard:
            spec_key = shard.ensure_sweep(spec)
            shard.record_run(spec_key, serial_records, executed=6, skipped=0)
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(shard_path) as shard:
                first = target.merge(shard)
            runs_after_first = len(target.runs())
            with SweepDatabase(shard_path) as shard:
                second = target.merge(shard)
            assert first.inserted == len(serial_records)
            assert second.inserted == 0
            assert second.identical == len(serial_records)
            assert len(target.runs()) == runs_after_first
            assert target.records(spec.content_key()) == serial_records

    def test_merge_conflicting_record_rejected(self, spec, serial_records, tmp_path):
        """A shard holding a *different* record for an already-stored point
        must abort the merge and leave the target untouched."""
        conflicting = [dict(record) for record in serial_records]
        conflicting[2]["makespan"] = conflicting[2]["makespan"] + 1
        with SweepDatabase(tmp_path / "conflict.db") as shard:
            spec_key = shard.ensure_sweep(spec)
            shard.record_run(spec_key, conflicting, executed=6, skipped=0)
        with SweepDatabase(tmp_path / "target.db") as target:
            spec_key = target.ensure_sweep(spec)
            target.record_run(spec_key, serial_records, executed=6, skipped=0)
            runs_before = len(target.runs())
            with SweepDatabase(tmp_path / "conflict.db") as shard:
                with pytest.raises(ResultStoreError, match="point 2 conflicts"):
                    target.merge(shard)
            assert target.records(spec_key) == serial_records
            assert len(target.runs()) == runs_before

    def test_merge_mismatched_spec_key_rejected(self, spec, serial_records, tmp_path):
        """With expect_spec_key, a shard of a different grid is refused."""
        other_spec = SweepSpec(
            name="other-grid", systems=("d695_leon",), processor_counts=(0,)
        )
        with SweepDatabase(tmp_path / "shard.db") as shard:
            shard.ensure_sweep(other_spec)
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(tmp_path / "shard.db") as shard:
                with pytest.raises(ResultStoreError, match="different grid"):
                    target.merge(shard, expect_spec_key=spec.content_key())
            assert target.spec_keys() == []

    def test_merge_records_run_source(self, spec, serial_records, tmp_path):
        shard_path = tmp_path / "shard-a.db"
        with SweepDatabase(shard_path) as shard:
            spec_key = shard.ensure_sweep(spec)
            shard.record_run(spec_key, serial_records, executed=6, skipped=0)
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(shard_path) as shard:
                target.merge(shard)
            (run,) = target.runs()
            assert run.source == "merge:shard-a.db"
            assert run.executed_points == len(serial_records)

    def test_merge_disjoint_sweeps_accumulates_both(self, spec, serial_records, tmp_path):
        """Merging stores that hold different grids keeps both sweeps."""
        other_spec = SweepSpec(
            name="other-grid", systems=("d695_plasma",), processor_counts=(0,)
        )
        other_records = [
            outcome.record() for outcome in SweepRunner(jobs=1).run(other_spec)
        ]
        with SweepDatabase(tmp_path / "a.db") as a:
            a.record_run(a.ensure_sweep(spec), serial_records, executed=6, skipped=0)
        with SweepDatabase(tmp_path / "b.db") as b:
            b.record_run(b.ensure_sweep(other_spec), other_records, executed=1, skipped=0)
        with SweepDatabase(tmp_path / "target.db") as target:
            for name in ("a.db", "b.db"):
                with SweepDatabase(tmp_path / name) as source:
                    target.merge(source)
            assert target.spec_keys() == [spec.content_key(), other_spec.content_key()]
            assert target.record_count() == len(serial_records) + len(other_records)


class TestCarryHistoryMerge:
    """merge(..., carry_history=True): shard-side run trajectories survive."""

    @staticmethod
    def _shard_slices(spec, serial_records, count=3):
        """(records, source, created_at) per shard, as 3 shard runs would
        commit them — timestamps pinned so stores are comparable row-for-row."""
        slices = []
        for index in range(count):
            indices = {p.index for p in spec.shard(index, count)}
            slices.append(
                (
                    [r for r in serial_records if r["index"] in indices],
                    f"shard:{index}/{count}",
                    f"2026-07-0{index + 1}T00:00:00+00:00",
                )
            )
        return slices

    def _shard_stores(self, spec, serial_records, tmp_path, count=3):
        paths = []
        for index, (records, source, created_at) in enumerate(
            self._shard_slices(spec, serial_records, count)
        ):
            path = tmp_path / f"carry-shard-{index}.db"
            with SweepDatabase(path) as shard:
                shard.record_run(
                    shard.ensure_sweep(spec),
                    records,
                    executed=len(records),
                    skipped=0,
                    source=source,
                    created_at=created_at,
                )
            paths.append(path)
        return paths

    def test_run_ids_remapped_collision_free(self, spec, serial_records, tmp_path):
        """Every shard store numbers its run 1; carried into a target that
        already has runs, each lands under a fresh id and no records are
        lost or overwritten."""
        paths = self._shard_stores(spec, serial_records, tmp_path)
        with SweepDatabase(tmp_path / "target.db") as target:
            # The target has its own history first: run id 1 is taken.
            target.record_run(
                target.ensure_sweep(spec),
                serial_records,
                executed=len(serial_records),
                skipped=0,
            )
            for path in paths:
                with SweepDatabase(path) as shard:
                    target.merge(shard, carry_history=True)
            run_ids = [run.run_id for run in target.runs()]
            assert run_ids == [1, 2, 3, 4]
            assert [run.source for run in target.runs()[1:]] == [
                "shard:0/3",
                "shard:1/3",
                "shard:2/3",
            ]
            # Each carried run still holds exactly its shard's records.
            total = sum(len(target.run_records(run_id)) for run_id in run_ids)
            assert total == 2 * len(serial_records)
            assert target.records(spec.content_key()) == serial_records

    def test_carry_merge_idempotent(self, spec, serial_records, tmp_path):
        paths = self._shard_stores(spec, serial_records, tmp_path)
        with SweepDatabase(tmp_path / "target.db") as target:
            for path in paths:
                with SweepDatabase(path) as shard:
                    first = target.merge(shard, carry_history=True)
                assert first.runs_carried == 1
            runs_after = len(target.runs())
            for path in paths:
                with SweepDatabase(path) as shard:
                    again = target.merge(shard, carry_history=True)
                assert again.runs_carried == 0
                assert again.inserted == 0
                assert again.identical > 0
            assert len(target.runs()) == runs_after

    def test_history_equals_sequential_serial_store_row_for_row(
        self, spec, serial_records, tmp_path
    ):
        """The satellite acceptance: history_rows()/trajectory_rows() over a
        carry-merged store equal — row for row — those of a store where the
        same shard runs executed sequentially on one host."""
        slices = self._shard_slices(spec, serial_records)
        sequential_path = tmp_path / "sequential.db"
        with SweepDatabase(sequential_path) as sequential:
            key = sequential.ensure_sweep(spec)
            for records, source, created_at in slices:
                sequential.record_run(
                    key,
                    records,
                    executed=len(records),
                    skipped=0,
                    source=source,
                    created_at=created_at,
                )
        paths = self._shard_stores(spec, serial_records, tmp_path)
        with SweepDatabase(tmp_path / "merged.db") as merged:
            shards = [SweepDatabase(path) for path in paths]
            try:
                merged.merge_all(shards, carry_history=True)
            finally:
                for shard in shards:
                    shard.close()
            with SweepDatabase(sequential_path) as sequential:
                assert list(merged.history_rows()) == list(sequential.history_rows())
                assert merged.trajectory_rows() == sequential.trajectory_rows()
                assert merged.win_rate_rows() == sequential.win_rate_rows()
                assert merged.run_count() == sequential.run_count() == 3

    def test_run_count_equals_sum_of_shard_run_counts(self, spec, tmp_path):
        """Through the real run_shard path: the merged store's run count is
        the sum of the shard stores' (including a resumed shard's 2 runs)."""
        paths = []
        for index in range(3):
            path = tmp_path / f"real-shard-{index}.db"
            with SweepDatabase(path) as db:
                SweepRunner(jobs=1).run_shard(spec, db, shard_index=index, shard_count=3)
                if index == 0:  # a resumed re-run adds a second run row
                    SweepRunner(jobs=1).run_shard(
                        spec, db, shard_index=index, shard_count=3, resume=True
                    )
            paths.append(path)
        with SweepDatabase(tmp_path / "merged.db") as merged:
            shard_runs = 0
            for path in paths:
                with SweepDatabase(path) as shard:
                    shard_runs += shard.run_count()
                    merged.merge(shard, carry_history=True)
            assert shard_runs == 4
            assert merged.run_count() == shard_runs
            assert merged.record_count() == spec.point_count

    def test_carry_merge_conflict_rejected_before_writing(
        self, spec, serial_records, tmp_path
    ):
        conflicting = [dict(record) for record in serial_records]
        conflicting[1]["makespan"] += 1
        with SweepDatabase(tmp_path / "bad.db") as shard:
            shard.record_run(shard.ensure_sweep(spec), conflicting, executed=6, skipped=0)
        with SweepDatabase(tmp_path / "target.db") as target:
            key = target.ensure_sweep(spec)
            target.record_run(key, serial_records, executed=6, skipped=0)
            with SweepDatabase(tmp_path / "bad.db") as shard:
                with pytest.raises(ResultStoreError, match="point 1 conflicts"):
                    target.merge(shard, carry_history=True)
            assert target.run_count() == 1
            assert target.records(spec.content_key()) == serial_records

    def test_carried_export_byte_identical_to_current_record_merge(
        self, spec, serial_records, tmp_path
    ):
        """Carrying history must not change the *current* records: the
        exported document equals the one a plain merge produces."""
        paths = self._shard_stores(spec, serial_records, tmp_path)
        with SweepDatabase(tmp_path / "plain.db") as plain:
            with SweepDatabase(tmp_path / "carried.db") as carried:
                for path in paths:
                    with SweepDatabase(path) as shard:
                        plain.merge(shard)
                    with SweepDatabase(path) as shard:
                        carried.merge(shard, carry_history=True)
                plain_doc = plain.export_document(tmp_path / "plain.json")
                carried_doc = carried.export_document(tmp_path / "carried.json")
        assert carried_doc.read_bytes() == plain_doc.read_bytes()


class TestMergeAll:
    @staticmethod
    def _store_with(path, spec, records):
        with SweepDatabase(path) as db:
            db.record_run(
                db.ensure_sweep(spec), records, executed=len(records), skipped=0
            )
        return path

    def test_merge_all_reports_per_source(self, spec, serial_records, tmp_path):
        a = self._store_with(tmp_path / "a.db", spec, serial_records[:3])
        b = self._store_with(tmp_path / "b.db", spec, serial_records[3:])
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(a) as da, SweepDatabase(b) as db_:
                first, second = target.merge_all([da, db_])
            assert (first.inserted, second.inserted) == (3, 3)
            assert target.records(spec.content_key()) == serial_records

    def test_merge_all_duplicate_source_is_identical(self, spec, serial_records, tmp_path):
        a = self._store_with(tmp_path / "a.db", spec, serial_records)
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(a) as first_open, SweepDatabase(a) as second_open:
                first, second = target.merge_all([first_open, second_open])
            assert first.inserted == len(serial_records)
            assert second.inserted == 0
            assert second.identical == len(serial_records)

    def test_merge_all_cross_source_conflict_writes_nothing(
        self, spec, serial_records, tmp_path
    ):
        """A conflict between two *sources* must surface during planning and
        leave the target completely untouched — even the valid source's
        records must not land."""
        conflicting = [dict(record) for record in serial_records]
        conflicting[4]["makespan"] += 1
        a = self._store_with(tmp_path / "a.db", spec, serial_records)
        b = self._store_with(tmp_path / "b.db", spec, conflicting)
        with SweepDatabase(tmp_path / "target.db") as target:
            with SweepDatabase(a) as da, SweepDatabase(b) as db_:
                with pytest.raises(ResultStoreError, match="point 4 conflicts"):
                    target.merge_all([da, db_])
            assert target.record_count() == 0
            assert target.spec_keys() == []
            assert target.runs() == []


class TestPointCosts:
    """Schema v4 point costs: control metadata feeding cost-based dispatch."""

    def test_costs_roundtrip_and_average_across_runs(self, spec, tmp_path):
        with SweepDatabase(tmp_path / "costs.db") as db:
            spec_key = db.ensure_sweep(spec)
            first = db.record_run(
                spec_key, [], executed=0, skipped=0, point_costs={0: 1.0, 1: 3.0}
            )
            db.record_run(
                spec_key, [], executed=0, skipped=0, point_costs={0: 2.0}
            )
            assert db.point_cost_rows(spec_key) == {0: 1.5, 1: 3.0}
            assert db.run_point_costs(first) == {0: 1.0, 1: 3.0}

    def test_serial_store_backed_run_records_its_costs(self, spec, tmp_path):
        """The serial backend measures per-point planning time and the
        engine persists it — the feedback loop cost-based sharding reads."""
        with SweepDatabase(tmp_path / "measured.db") as db:
            report = SweepRunner(jobs=1).run_stored(spec, db)
            costs = db.point_cost_rows(report.spec_key)
        assert set(costs) == {p.index for p in spec.points()}
        assert all(seconds >= 0.0 for seconds in costs.values())

    def test_costs_never_touch_byte_identity(self, spec, serial_records, tmp_path):
        """Costs are control metadata: two stores holding the same records,
        one with costs and one without, export byte-identically and agree
        on data_version."""
        exports = []
        versions = []
        for name, costs in (("plain", None), ("costed", {0: 1.25, 3: 0.5})):
            with SweepDatabase(tmp_path / f"{name}.db") as db:
                spec_key = db.ensure_sweep(spec)
                db.record_run(
                    spec_key,
                    serial_records,
                    executed=len(serial_records),
                    skipped=0,
                    point_costs=costs,
                )
                exports.append(
                    db.export_document(tmp_path / f"{name}.json").read_bytes()
                )
                versions.append(db.data_version())
        assert exports[0] == exports[1]
        assert versions[0] == versions[1]

    def test_history_carrying_merge_carries_costs(self, spec, tmp_path):
        with SweepDatabase(tmp_path / "shard.db") as shard:
            report = SweepRunner(jobs=1).run_stored(spec, shard)
            shard_costs = shard.point_cost_rows(report.spec_key)
            with SweepDatabase(tmp_path / "target.db") as target:
                target.merge(shard, carry_history=True)
                assert target.point_cost_rows(report.spec_key) == shard_costs

    def test_plain_merge_does_not_carry_costs(self, spec, tmp_path):
        with SweepDatabase(tmp_path / "shard.db") as shard:
            report = SweepRunner(jobs=1).run_stored(spec, shard)
            with SweepDatabase(tmp_path / "target.db") as target:
                target.merge(shard)
                assert target.point_cost_rows(report.spec_key) == {}
