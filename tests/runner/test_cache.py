"""Tests of the content-keyed system and characterisation caches."""

import json

import pytest

import repro.runner.cache as cache_module
from repro.runner.cache import (
    CharacterizationCache,
    SystemCache,
    build_point_system,
    content_key,
)


class TestContentKey:
    def test_stable_across_calls(self):
        payload = {"a": 1, "b": [1, 2, 3]}
        assert content_key(payload) == content_key(payload)

    def test_key_order_insensitive(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_differs_on_content(self):
        assert content_key({"a": 1}) != content_key({"a": 2})


class TestBuildPointSystem:
    def test_builds_paper_system(self):
        system = build_point_system("d695_leon", flit_width=16)
        assert system.name == "d695_leon"
        assert system.network.flit_width == 16

    def test_pattern_penalty_changes_characterization(self):
        default = build_point_system("d695_leon")
        penalised = build_point_system("d695_leon", pattern_penalty=40)
        default_char = default.processor_characterizations["leon1"]
        penalised_char = penalised.processor_characterizations["leon1"]
        assert penalised_char != default_char


class TestSystemCache:
    def test_miss_then_hit(self):
        cache = SystemCache()
        first = cache.get("d695_leon")
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = cache.get("d695_leon")
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_parameters_are_different_entries(self):
        cache = SystemCache()
        cache.get("d695_leon")
        cache.get("d695_leon", flit_width=16)
        cache.get("d695_leon", pattern_penalty=5)
        assert len(cache) == 3
        assert cache.stats.misses == 3

    def test_clear_drops_entries(self):
        cache = SystemCache()
        first = cache.get("d695_leon")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("d695_leon") is not first

    def test_stats_as_dict(self):
        cache = SystemCache()
        cache.get("d695_leon")
        cache.get("d695_leon")
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "disk_hits": 0}


class TestSystemCacheDisk:
    def test_disk_persistence(self, tmp_path, monkeypatch):
        cache = SystemCache(tmp_path)
        built = cache.get("d695_leon")
        assert list(tmp_path.glob("system-build-*.pkl"))
        assert cache.stats.as_dict() == {"hits": 0, "misses": 1, "disk_hits": 0}

        # A fresh cache over the same directory must load from disk without
        # rebuilding the system.
        def boom(*args, **kwargs):
            raise AssertionError("build_point_system must not be called on a disk hit")

        monkeypatch.setattr(cache_module, "build_paper_system", boom)
        reloaded_cache = SystemCache(tmp_path)
        reloaded = reloaded_cache.get("d695_leon")
        assert reloaded_cache.stats.as_dict() == {
            "hits": 1,
            "misses": 0,
            "disk_hits": 1,
        }
        assert reloaded.name == built.name
        built_ids = [core.identifier for core in built.cores]
        assert [core.identifier for core in reloaded.cores] == built_ids
        # The reloaded system plans identically to the freshly built one.
        from repro.schedule.planner import TestPlanner

        assert (
            TestPlanner(reloaded).plan(reused_processors=2).makespan
            == TestPlanner(built).plan(reused_processors=2).makespan
        )
        # Further lookups are memory hits, not repeated disk reads.
        reloaded_cache.get("d695_leon")
        assert reloaded_cache.stats.as_dict() == {
            "hits": 2,
            "misses": 0,
            "disk_hits": 1,
        }

    def test_corrupt_record_rebuilt(self, tmp_path):
        cache = SystemCache(tmp_path)
        cache.get("d695_leon")
        (record,) = tmp_path.glob("system-build-*.pkl")
        record.write_bytes(b"not a pickle")
        fresh = SystemCache(tmp_path)
        fresh.get("d695_leon")
        assert fresh.stats.as_dict() == {"hits": 0, "misses": 1, "disk_hits": 0}

    def test_schema_version_checked(self, tmp_path):
        import pickle

        cache = SystemCache(tmp_path)
        cache.get("d695_leon")
        (record,) = tmp_path.glob("system-build-*.pkl")
        document = pickle.loads(record.read_bytes())
        document["schema_version"] = 999
        record.write_bytes(pickle.dumps(document))
        fresh = SystemCache(tmp_path)
        fresh.get("d695_leon")
        assert fresh.stats.misses == 1

    def test_library_version_checked(self, tmp_path):
        """A record pickled by a different library version is rebuilt, not
        unpickled into a potentially stale class shape."""
        import pickle

        cache = SystemCache(tmp_path)
        cache.get("d695_leon")
        (record,) = tmp_path.glob("system-build-*.pkl")
        document = pickle.loads(record.read_bytes())
        document["version"] = "0.0.0-stale"
        record.write_bytes(pickle.dumps(document))
        fresh = SystemCache(tmp_path)
        fresh.get("d695_leon")
        assert fresh.stats.misses == 1

    def test_memory_only_cache_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = SystemCache()
        cache.get("d695_leon")
        assert cache.cache_dir is None
        assert not list(tmp_path.iterdir())


@pytest.fixture
def small_network():
    from repro.noc.network import Network, NocConfig

    return Network(NocConfig(width=3, height=3, flit_width=16))


class TestCharacterizationCache:
    def test_memory_hit(self, small_network):
        cache = CharacterizationCache()
        first = cache.get(small_network, packet_count=20)
        second = cache.get(small_network, packet_count=20)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_campaigns_are_different_entries(self, small_network):
        cache = CharacterizationCache()
        cache.get(small_network, packet_count=20)
        cache.get(small_network, packet_count=30)
        assert cache.stats.misses == 2

    def test_disk_persistence(self, small_network, tmp_path, monkeypatch):
        cache = CharacterizationCache(tmp_path)
        computed = cache.get(small_network, packet_count=20)
        assert list(tmp_path.glob("noc-characterization-*.json"))

        # A fresh cache over the same directory must load from disk without
        # recomputing the campaign.
        def boom(*args, **kwargs):
            raise AssertionError("characterize_noc must not be called on a disk hit")

        monkeypatch.setattr(cache_module, "characterize_noc", boom)
        reloaded_cache = CharacterizationCache(tmp_path)
        reloaded = reloaded_cache.get(small_network, packet_count=20)
        assert reloaded == computed
        assert reloaded_cache.stats.hits == 1 and reloaded_cache.stats.misses == 0

    def test_corrupt_record_recomputed(self, small_network, tmp_path):
        cache = CharacterizationCache(tmp_path)
        cache.get(small_network, packet_count=20)
        (record,) = tmp_path.glob("noc-characterization-*.json")
        record.write_text("not json", encoding="utf-8")
        fresh = CharacterizationCache(tmp_path)
        fresh.get(small_network, packet_count=20)
        assert fresh.stats.misses == 1

    def test_schema_version_checked(self, small_network, tmp_path):
        cache = CharacterizationCache(tmp_path)
        cache.get(small_network, packet_count=20)
        (record,) = tmp_path.glob("noc-characterization-*.json")
        document = json.loads(record.read_text(encoding="utf-8"))
        document["schema_version"] = 999
        record.write_text(json.dumps(document), encoding="utf-8")
        fresh = CharacterizationCache(tmp_path)
        fresh.get(small_network, packet_count=20)
        assert fresh.stats.misses == 1

    def test_crash_mid_persist_leaves_previous_record(
        self, small_network, tmp_path, monkeypatch
    ):
        """Simulated crash while persisting: the on-disk record keeps its
        previous (complete) content instead of ending up truncated."""
        import os as os_module

        cache = CharacterizationCache(tmp_path)
        cache.get(small_network, packet_count=20)
        (record,) = tmp_path.glob("noc-characterization-*.json")
        before = record.read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os_module, "replace", crash)
        fresh = CharacterizationCache(tmp_path)
        record.unlink()  # force a recompute that must then fail to persist
        with pytest.raises(OSError, match="simulated crash"):
            fresh.get(small_network, packet_count=20)
        monkeypatch.undo()

        record.write_bytes(before)
        reloaded = CharacterizationCache(tmp_path)
        reloaded.get(small_network, packet_count=20)
        assert reloaded.stats.hits == 1 and reloaded.stats.misses == 0

    def test_leftover_temp_file_not_loaded(self, small_network, tmp_path):
        """Stray ``*.tmp`` staging files (a hard crash's residue) must never
        be picked up as cache records."""
        cache = CharacterizationCache(tmp_path)
        computed = cache.get(small_network, packet_count=20)
        (record,) = tmp_path.glob("noc-characterization-*.json")
        partial = tmp_path / (record.name + ".xyz.tmp")
        partial.write_text('{"schema_version": 1, "charac', encoding="utf-8")
        fresh = CharacterizationCache(tmp_path)
        assert fresh.get(small_network, packet_count=20) == computed
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0
