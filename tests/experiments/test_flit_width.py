"""Tests of the flit-width ablation sweep (A3)."""

import pytest

from repro.experiments.ablation import run_flit_width_sweep


class TestFlitWidthSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_flit_width_sweep("d695_plasma", flit_widths=(16, 32, 64))

    def test_one_row_per_width(self, rows):
        assert [row.flit_width for row in rows] == [16, 32, 64]

    def test_wider_flits_shorten_both_configurations(self, rows):
        baselines = [row.baseline_makespan for row in rows]
        reuses = [row.reuse_makespan for row in rows]
        assert baselines == sorted(baselines, reverse=True)
        assert reuses == sorted(reuses, reverse=True)

    def test_reuse_helps_at_every_width(self, rows):
        for row in rows:
            assert row.reuse_makespan < row.baseline_makespan
            assert row.reduction_percent > 0.0

    def test_relative_gain_insensitive_to_width(self, rows):
        reductions = [row.reduction_percent for row in rows]
        assert max(reductions) - min(reductions) < 20.0
