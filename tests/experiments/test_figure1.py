"""Tests of the Figure 1 experiment driver (shape checks on d695)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figure1 import (
    PAPER_POWER_SERIES,
    PAPER_PROCESSOR_COUNTS,
    run_figure1,
    run_panel,
)
from repro.schedule.result import validate_schedule


class TestPaperConstants:
    def test_processor_counts_follow_figure_axes(self):
        assert PAPER_PROCESSOR_COUNTS["d695"] == (0, 2, 4, 6)
        assert PAPER_PROCESSOR_COUNTS["p22810"] == (0, 2, 4, 6, 8)
        assert PAPER_PROCESSOR_COUNTS["p93791"] == (0, 2, 4, 6, 8)

    def test_two_power_series(self):
        assert set(PAPER_POWER_SERIES) == {"50% power limit", "no power limit"}


class TestRunPanel:
    @pytest.fixture(scope="class")
    def d695_panel(self):
        return run_panel("d695_leon")

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            run_panel("d695_arm")

    def test_panel_has_both_series_and_all_counts(self, d695_panel):
        assert set(d695_panel.series) == {"50% power limit", "no power limit"}
        for sweep in d695_panel.series.values():
            assert sorted(sweep) == [0, 2, 4, 6]

    def test_every_schedule_is_valid(self, d695_panel):
        for sweep in d695_panel.series.values():
            for result in sweep.values():
                validate_schedule(result)

    def test_reuse_reduces_test_time(self, d695_panel):
        """The paper's central claim: more processors => shorter test."""
        for label, sweep in d695_panel.series.items():
            makespans = d695_panel.makespans(label)
            assert makespans[6] < makespans[0]
            assert makespans[2] < makespans[0]

    def test_noproc_baseline_independent_of_power_limit(self, d695_panel):
        """With a single external interface only one test runs at a time, so
        the 50 % ceiling cannot change the noproc bar (visible in Figure 1)."""
        assert (
            d695_panel.series["50% power limit"][0].makespan
            == d695_panel.series["no power limit"][0].makespan
        )

    def test_power_limit_roughly_never_helps(self, d695_panel):
        """Tightening the power ceiling should not shorten the test.  Greedy
        list scheduling is subject to small anomalies (an extra constraint can
        accidentally steer it to a slightly better schedule — the same effect
        the paper blames for p22810's irregular bars), so allow a 2 % slack."""
        for count in PAPER_PROCESSOR_COUNTS["d695"]:
            limited = d695_panel.series["50% power limit"][count].makespan
            free = d695_panel.series["no power limit"][count].makespan
            assert limited >= free * 0.98

    def test_best_reduction_in_paper_ballpark(self, d695_panel):
        """The paper quotes 28 % for d695_leon; the reproduction must land in
        a comparable range (the NoC/processor characterisation differs)."""
        reduction = d695_panel.best_reduction("no power limit")
        assert 20.0 <= reduction <= 50.0

    def test_custom_counts(self):
        panel = run_panel("d695_plasma", processor_counts=(0, 6), power_series={"free": None})
        assert sorted(panel.series["free"]) == [0, 6]


class TestRunFigure1Subset:
    def test_subset_of_systems(self):
        panels = run_figure1(systems=("d695_leon",))
        assert set(panels) == {"d695_leon"}
