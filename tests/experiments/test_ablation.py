"""Tests of the ablation drivers (on the small d695 systems for speed)."""

import pytest

from repro.experiments.ablation import (
    run_external_interface_sweep,
    run_pattern_penalty_sweep,
    run_scheduler_comparison,
)


class TestSchedulerComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scheduler_comparison("d695_leon", processor_counts=(0, 2, 4))

    def test_row_per_count(self, rows):
        assert [row.reused_processors for row in rows] == [0, 2, 4]

    def test_identical_without_processors(self, rows):
        noproc = rows[0]
        assert noproc.greedy_makespan == noproc.lookahead_makespan

    def test_improvement_metric(self, rows):
        for row in rows:
            expected = 100.0 * (row.greedy_makespan - row.lookahead_makespan) / row.greedy_makespan
            assert row.improvement_percent == pytest.approx(expected)


class TestPatternPenaltySweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_pattern_penalty_sweep("d695_plasma", penalties=(0, 10, 40))

    def test_baseline_independent_of_penalty(self, rows):
        baselines = {row.baseline_makespan for row in rows}
        assert len(baselines) == 1

    def test_higher_penalty_never_improves_reuse(self, rows):
        by_penalty = {row.cycles_per_pattern: row.reuse_makespan for row in rows}
        assert by_penalty[0] <= by_penalty[40]

    def test_reductions_positive(self, rows):
        for row in rows:
            assert row.reduction_percent > 0.0


class TestExternalInterfaceSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_external_interface_sweep("d695_leon", max_pairs=2)

    def test_rows_per_pair_count(self, rows):
        assert [row.external_pairs for row in rows] == [1, 2]

    def test_more_tester_channels_help_the_baseline(self, rows):
        assert rows[1].external_only_makespan <= rows[0].external_only_makespan

    def test_processor_reuse_still_helps_with_extra_channels(self, rows):
        for row in rows:
            assert row.with_processors_makespan <= row.external_only_makespan
