"""Test package (keeps module basenames unique for pytest collection)."""
