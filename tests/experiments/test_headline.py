"""Tests of the headline-claims driver."""

import pytest

from repro.experiments.headline import run_headline_claims


class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def claims(self):
        return {claim.claim_id: claim for claim in run_headline_claims()}

    def test_all_three_claims_present(self, claims):
        assert set(claims) == {"T1", "T2", "T3"}

    def test_paper_values_recorded(self, claims):
        assert claims["T1"].paper_value == 28.0
        assert claims["T2"].paper_value == 44.0
        assert claims["T3"].paper_value == 37.0

    def test_measured_reductions_positive(self, claims):
        for claim in claims.values():
            assert claim.measured_value > 0.0

    def test_measured_reductions_in_ballpark(self, claims):
        """The reproduction does not match the testbed exactly, but every
        quoted reduction must be within 15 percentage points."""
        for claim in claims.values():
            assert claim.absolute_error <= 15.0, claim.row()

    def test_larger_system_gains_at_least_as_much(self, claims):
        # The paper's qualitative statement: bigger systems benefit more from
        # (or at least as much as) processor reuse than d695... allow a small
        # tolerance because the greedy scheduler is not monotone.
        assert claims["T2"].measured_value >= claims["T1"].measured_value - 5.0

    def test_row_rendering(self, claims):
        text = claims["T1"].row()
        assert "T1" in text
        assert "paper" in text
        assert "measured" in text
