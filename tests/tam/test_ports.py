"""Tests of external I/O ports and interface pairing."""

import pytest

from repro.errors import ResourceError
from repro.tam.ports import IoPort, PortDirection, pair_external_interfaces


def port(name, node, direction, power=0.0):
    return IoPort(name=name, node=node, direction=direction, power=power)


class TestIoPort:
    def test_valid_port(self):
        p = port("in0", (0, 0), PortDirection.INPUT)
        assert p.direction is PortDirection.INPUT

    def test_empty_name_rejected(self):
        with pytest.raises(ResourceError):
            port("", (0, 0), PortDirection.INPUT)

    def test_negative_power_rejected(self):
        with pytest.raises(ResourceError):
            port("in0", (0, 0), PortDirection.INPUT, power=-1.0)


class TestPairing:
    def test_one_pair(self):
        ports = [
            port("in0", (0, 0), PortDirection.INPUT),
            port("out0", (3, 3), PortDirection.OUTPUT),
        ]
        pairs = pair_external_interfaces(ports)
        assert len(pairs) == 1
        assert pairs[0][0].name == "in0"
        assert pairs[0][1].name == "out0"

    def test_pairs_follow_declaration_order(self):
        ports = [
            port("in0", (0, 0), PortDirection.INPUT),
            port("in1", (1, 0), PortDirection.INPUT),
            port("out0", (3, 3), PortDirection.OUTPUT),
            port("out1", (2, 3), PortDirection.OUTPUT),
        ]
        pairs = pair_external_interfaces(ports)
        assert [(a.name, b.name) for a, b in pairs] == [("in0", "out0"), ("in1", "out1")]

    def test_unbalanced_ports_drop_extras(self):
        ports = [
            port("in0", (0, 0), PortDirection.INPUT),
            port("in1", (1, 0), PortDirection.INPUT),
            port("out0", (3, 3), PortDirection.OUTPUT),
        ]
        assert len(pair_external_interfaces(ports)) == 1

    def test_no_pair_raises(self):
        with pytest.raises(ResourceError):
            pair_external_interfaces([port("in0", (0, 0), PortDirection.INPUT)])
        with pytest.raises(ResourceError):
            pair_external_interfaces([])
