"""Tests of the interface availability bookkeeping."""

import pytest

from repro.errors import ResourceError
from repro.tam.interfaces import InterfaceKind, TestInterface
from repro.tam.pool import NEVER, ResourcePool


def external(identifier="ext0"):
    return TestInterface(
        identifier=identifier,
        kind=InterfaceKind.EXTERNAL,
        source_node=(0, 0),
        sink_node=(1, 1),
    )


def processor(identifier="proc0", core="cpu0"):
    return TestInterface(
        identifier=identifier,
        kind=InterfaceKind.PROCESSOR,
        source_node=(2, 2),
        sink_node=(2, 2),
        cycles_per_pattern=10,
        processor_core_id=core,
    )


class TestResourcePool:
    def test_external_available_immediately(self):
        pool = ResourcePool([external()])
        assert [state.identifier for state in pool.available(0)] == ["ext0"]

    def test_processor_unavailable_until_enabled(self):
        pool = ResourcePool([external(), processor()])
        assert [state.identifier for state in pool.available(0)] == ["ext0"]
        pool.enable("proc0", 500)
        assert [state.identifier for state in pool.available(400)] == ["ext0"]
        available = [state.identifier for state in pool.available(500)]
        assert set(available) == {"ext0", "proc0"}

    def test_occupy_and_release(self):
        pool = ResourcePool([external()])
        pool.occupy("ext0", 0, 100)
        assert pool.available(50) == []
        assert [s.identifier for s in pool.available(100)] == ["ext0"]
        assert pool.state("ext0").tests_run == 1
        assert pool.state("ext0").busy_cycles == 100

    def test_occupy_before_available_rejected(self):
        pool = ResourcePool([external()])
        pool.occupy("ext0", 0, 100)
        with pytest.raises(ResourceError):
            pool.occupy("ext0", 50, 80)

    def test_occupy_backwards_interval_rejected(self):
        pool = ResourcePool([external()])
        with pytest.raises(ResourceError):
            pool.occupy("ext0", 10, 5)

    def test_available_ordering_is_first_available_first(self):
        pool = ResourcePool([external("ext0"), processor("proc0")])
        pool.enable("proc0", 10)
        pool.occupy("ext0", 0, 50)
        # proc0 became available at 10, ext0 only at 50.
        order = [state.identifier for state in pool.available(60)]
        assert order == ["proc0", "ext0"]

    def test_next_event_after(self):
        pool = ResourcePool([external("ext0"), processor("proc0")])
        pool.occupy("ext0", 0, 75)
        assert pool.next_event_after(0) == 75
        pool.enable("proc0", 30)
        assert pool.next_event_after(0) == 30
        assert pool.next_event_after(30) == 75

    def test_next_event_ignores_never(self):
        pool = ResourcePool([external(), processor()])
        assert pool.next_event_after(0) == NEVER

    def test_pending_enablement(self):
        pool = ResourcePool([external(), processor()])
        assert [s.identifier for s in pool.pending_enablement()] == ["proc0"]
        pool.enable("proc0", 5)
        assert pool.pending_enablement() == []

    def test_processor_interfaces_for(self):
        pool = ResourcePool([external(), processor("proc0", core="cpu0"), processor("proc1", core="cpu1")])
        assert [s.identifier for s in pool.processor_interfaces_for("cpu1")] == ["proc1"]

    def test_enable_external_rejected(self):
        pool = ResourcePool([external()])
        with pytest.raises(ResourceError):
            pool.enable("ext0", 10)

    def test_duplicate_identifier_rejected(self):
        with pytest.raises(ResourceError):
            ResourcePool([external(), external()])

    def test_empty_pool_rejected(self):
        with pytest.raises(ResourceError):
            ResourcePool([])

    def test_unknown_interface_rejected(self):
        pool = ResourcePool([external()])
        with pytest.raises(ResourceError):
            pool.state("nope")
