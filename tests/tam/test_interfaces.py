"""Tests of test interface construction and validation."""

import pytest

from repro.errors import ResourceError
from repro.processors.characterization import characterize
from repro.processors.plasma import plasma_processor
from repro.tam.interfaces import (
    InterfaceKind,
    TestInterface,
    external_interface,
    processor_interface,
)
from repro.tam.ports import IoPort, PortDirection


class TestExternalInterface:
    def test_from_port_pair(self):
        interface = external_interface(
            "ext0",
            IoPort("in0", (0, 0), PortDirection.INPUT, power=5.0),
            IoPort("out0", (3, 3), PortDirection.OUTPUT, power=3.0),
        )
        assert interface.is_external
        assert not interface.is_processor
        assert not interface.requires_enablement
        assert interface.source_node == (0, 0)
        assert interface.sink_node == (3, 3)
        assert interface.cycles_per_pattern == 0
        assert interface.active_power == pytest.approx(8.0)

    def test_external_must_not_reference_processor(self):
        with pytest.raises(ResourceError):
            TestInterface(
                identifier="ext0",
                kind=InterfaceKind.EXTERNAL,
                source_node=(0, 0),
                sink_node=(1, 1),
                processor_core_id="leon1",
            )


class TestProcessorInterface:
    def test_from_characterization(self):
        plasma = plasma_processor(name="plasma1")
        characterization = characterize(plasma, flit_width=32)
        interface = processor_interface("proc.plasma1", characterization, (2, 1), "plasma1")
        assert interface.is_processor
        assert interface.requires_enablement
        assert interface.source_node == interface.sink_node == (2, 1)
        assert interface.cycles_per_pattern == 10
        assert interface.processor_core_id == "plasma1"
        assert interface.memory_bytes == plasma.memory_bytes

    def test_processor_requires_core_reference(self):
        with pytest.raises(ResourceError):
            TestInterface(
                identifier="p",
                kind=InterfaceKind.PROCESSOR,
                source_node=(0, 0),
                sink_node=(0, 0),
            )

    def test_negative_overhead_rejected(self):
        with pytest.raises(ResourceError):
            TestInterface(
                identifier="p",
                kind=InterfaceKind.PROCESSOR,
                source_node=(0, 0),
                sink_node=(0, 0),
                cycles_per_pattern=-1,
                processor_core_id="x",
            )

    def test_empty_identifier_rejected(self):
        with pytest.raises(ResourceError):
            TestInterface(
                identifier="",
                kind=InterfaceKind.EXTERNAL,
                source_node=(0, 0),
                sink_node=(0, 0),
            )
