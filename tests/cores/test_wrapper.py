"""Tests of wrapper design, including balancing properties with hypothesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cores.wrapper import design_wrapper
from repro.errors import ConfigurationError
from repro.itc02.library import load_benchmark
from repro.itc02.model import Module, ScanChain

from tests.conftest import make_module


class TestDesignWrapperBasics:
    def test_combinational_core(self):
        module = make_module(inputs=10, outputs=6, chain_lengths=(), patterns=4)
        design = design_wrapper(module, width=4)
        # Ten input cells over four chains: longest chain has three cells.
        assert design.scan_in_length == 3
        assert design.scan_out_length == 2
        assert design.test_time == (1 + 3) * 4 + 2

    def test_single_chain_core(self):
        module = make_module(inputs=0, outputs=0, chain_lengths=(40,), patterns=2)
        design = design_wrapper(module, width=8)
        # The single internal chain cannot be split.
        assert design.scan_in_length == 40
        assert design.scan_out_length == 40
        assert design.test_time == (1 + 40) * 2 + 40

    def test_width_one_serialises_everything(self):
        module = make_module(inputs=5, outputs=3, chain_lengths=(10, 10), patterns=1)
        design = design_wrapper(module, width=1)
        assert design.scan_in_length == 10 + 10 + 5
        assert design.scan_out_length == 10 + 10 + 3

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            design_wrapper(make_module(), width=0)

    def test_zero_pattern_core_has_zero_time(self):
        module = make_module(patterns=0)
        assert design_wrapper(module, width=4).test_time == 0

    def test_cycles_per_pattern(self):
        module = make_module(inputs=0, outputs=0, chain_lengths=(12,), patterns=3)
        design = design_wrapper(module, width=4)
        assert design.cycles_per_pattern == 13

    def test_known_d695_core_test_time(self):
        s5378 = load_benchmark("d695").module_by_name("s5378")
        design = design_wrapper(s5378, width=32)
        # 4 chains of 46/45/44/44 plus 35 inputs / 49 outputs spread over the
        # remaining wrapper chains: the longest chain stays 46 on the input
        # side and 46 on the output side.
        assert design.scan_in_length == 46
        assert design.scan_out_length == 46
        assert design.test_time == (1 + 46) * 97 + 46

    def test_wider_wrapper_never_slower(self):
        module = load_benchmark("d695").module_by_name("s38417")
        times = [design_wrapper(module, width).test_time for width in (8, 16, 32, 64)]
        assert times == sorted(times, reverse=True)

    def test_used_width_never_exceeds_requested(self):
        module = make_module(inputs=3, outputs=2, chain_lengths=(5,), patterns=1)
        design = design_wrapper(module, width=64)
        assert design.used_width <= 64
        assert len(design.chains) <= 64

    def test_stimulus_and_response_bits(self):
        module = make_module(inputs=4, outputs=6, chain_lengths=(10,), patterns=3)
        design = design_wrapper(module, width=8)
        assert design.stimulus_bits_per_pattern == 10 + 4
        assert design.response_bits_per_pattern == 10 + 6


def small_modules():
    """Strategy for modules with bounded size (keeps wrapper design fast)."""
    return st.builds(
        lambda inputs, outputs, chains, patterns: Module(
            number=1,
            name="h",
            inputs=inputs,
            outputs=outputs,
            bidirs=0,
            scan_chains=tuple(ScanChain(index=i, length=length) for i, length in enumerate(chains)),
            patterns=patterns,
        ),
        inputs=st.integers(min_value=0, max_value=300),
        outputs=st.integers(min_value=0, max_value=300),
        chains=st.lists(st.integers(min_value=1, max_value=120), min_size=0, max_size=40),
        patterns=st.integers(min_value=1, max_value=200),
    )


class TestWrapperProperties:
    @settings(max_examples=80, deadline=None)
    @given(module=small_modules(), width=st.integers(min_value=1, max_value=64))
    def test_all_cells_are_placed(self, module, width):
        design = design_wrapper(module, width)
        assert sum(c.scan_cells for c in design.chains) == module.scan_cells
        assert sum(c.input_cells for c in design.chains) == module.inputs + module.bidirs
        assert sum(c.output_cells for c in design.chains) == module.outputs + module.bidirs

    @settings(max_examples=80, deadline=None)
    @given(module=small_modules(), width=st.integers(min_value=1, max_value=64))
    def test_longest_chain_lower_bound(self, module, width):
        """The longest wrapper chain can never beat the perfect-balance bound
        or the longest internal scan chain."""
        design = design_wrapper(module, width)
        longest_internal = max(module.scan_chain_lengths, default=0)
        in_bits = module.scan_in_bits_per_pattern
        lower = max(longest_internal, -(-in_bits // width) if in_bits else 0)
        assert design.scan_in_length >= lower

    @settings(max_examples=80, deadline=None)
    @given(module=small_modules(), width=st.integers(min_value=1, max_value=64))
    def test_balance_quality(self, module, width):
        """LPT balancing stays within one longest-internal-chain (or one cell
        for combinational cores) of the perfect balance."""
        design = design_wrapper(module, width)
        longest_internal = max(module.scan_chain_lengths, default=0)
        in_bits = module.scan_in_bits_per_pattern
        perfect = -(-in_bits // min(width, max(1, in_bits))) if in_bits else 0
        slack = max(longest_internal, 1)
        assert design.scan_in_length <= perfect + slack

    @settings(max_examples=60, deadline=None)
    @given(module=small_modules())
    def test_monotone_in_width(self, module):
        previous = None
        for width in (1, 2, 4, 8, 16, 32):
            time = design_wrapper(module, width).test_time
            if previous is not None:
                assert time <= previous
            previous = time
