"""Tests of the core-under-test abstraction."""

import pytest

from repro.cores.core import CoreUnderTest, build_core, build_cores, total_power
from repro.errors import ConfigurationError

from tests.conftest import make_module


class TestBuildCore:
    def test_build_core_defaults(self):
        module = make_module("alpha", power=75.0)
        core = build_core(module, flit_width=8)
        assert core.identifier == "alpha"
        assert core.power == 75.0
        assert not core.is_processor
        assert not core.placed
        assert core.patterns == module.patterns
        assert core.application_time == core.wrapper.test_time

    def test_processor_core_requires_name(self):
        module = make_module("cpu")
        with pytest.raises(ConfigurationError):
            CoreUnderTest(
                identifier="cpu",
                module=module,
                wrapper=build_core(module, flit_width=8).wrapper,
                test_set=build_core(module, flit_width=8).test_set,
                power=10.0,
                is_processor=True,
            )

    def test_processor_core_with_name(self):
        core = build_core(
            make_module("cpu"), flit_width=8, is_processor=True, processor_name="leon"
        )
        assert core.is_processor
        assert core.processor_name == "leon"

    def test_place_at(self):
        core = build_core(make_module(), flit_width=8)
        core.place_at((2, 1))
        assert core.placed
        assert core.node == (2, 1)

    def test_empty_identifier_rejected(self):
        with pytest.raises(ConfigurationError):
            build_core(make_module(), flit_width=8, identifier="")


class TestBuildCores:
    def test_identifier_prefixing(self, toy_benchmark):
        cores = build_cores(toy_benchmark, flit_width=16)
        assert [core.identifier for core in cores] == [
            f"toy.{module.name}" for module in toy_benchmark.modules
        ]

    def test_explicit_empty_prefix(self, toy_benchmark):
        cores = build_cores(toy_benchmark, flit_width=16, identifier_prefix="")
        assert [core.identifier for core in cores] == [
            module.name for module in toy_benchmark.modules
        ]

    def test_total_power(self, toy_benchmark):
        cores = build_cores(toy_benchmark, flit_width=16)
        assert total_power(cores) == pytest.approx(toy_benchmark.total_power)

    def test_wrapper_width_matches_flit_width(self, toy_benchmark):
        cores = build_cores(toy_benchmark, flit_width=16)
        assert all(core.wrapper.width == 16 for core in cores)
