"""Tests of the synthetic power model."""

import pytest

from repro.cores.power import PowerModel, assign_power
from repro.errors import ConfigurationError

from tests.conftest import make_benchmark, make_module


class TestPowerModel:
    def test_power_scales_with_size(self):
        model = PowerModel(jitter=0.0)
        small = make_module("small", inputs=2, outputs=2, chain_lengths=(10,))
        large = make_module("large", inputs=200, outputs=200, chain_lengths=(500, 500))
        assert model.power_of(large) > model.power_of(small)

    def test_power_deterministic(self):
        model = PowerModel()
        module = make_module("thing")
        assert model.power_of(module) == model.power_of(module)

    def test_jitter_bounded(self):
        model = PowerModel(floor=0.0, slope=1.0, jitter=0.2)
        module = make_module("x", inputs=100, outputs=100, chain_lengths=(100,))
        size = 100 + 100 + 100
        power = model.power_of(module)
        assert 0.8 * size <= power <= 1.2 * size

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PowerModel(floor=-1.0)
        with pytest.raises(ConfigurationError):
            PowerModel(jitter=1.5)


class TestAssignPower:
    def test_only_missing_preserves_existing(self):
        benchmark = make_benchmark()  # modules carry power already
        powered = assign_power(benchmark)
        assert [m.power for m in powered.modules] == [m.power for m in benchmark.modules]

    def test_fills_missing_values(self):
        benchmark = make_benchmark().with_powers([0.0, 0.0, 10.0, 0.0])
        powered = assign_power(benchmark)
        assert all(m.power > 0 for m in powered.modules)
        assert powered.modules[2].power == 10.0

    def test_reassign_all(self):
        benchmark = make_benchmark()
        powered = assign_power(benchmark, PowerModel(jitter=0.0), only_missing=False)
        assert [m.power for m in powered.modules] != [m.power for m in benchmark.modules]
