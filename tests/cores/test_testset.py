"""Tests of the test-set aggregation."""

import pytest

from repro.cores.testset import TestSet
from repro.cores.wrapper import design_wrapper

from tests.conftest import make_module


class TestTestSet:
    def test_from_wrapper(self):
        module = make_module(inputs=4, outputs=6, chain_lengths=(10, 10), patterns=5)
        design = design_wrapper(module, width=4)
        test_set = TestSet.from_wrapper(design)
        assert test_set.core_name == module.name
        assert test_set.patterns == 5
        assert test_set.application_time == design.test_time
        assert test_set.cycles_per_pattern == design.cycles_per_pattern
        assert test_set.stimulus_bits == design.stimulus_bits_per_pattern * 5
        assert test_set.response_bits == design.response_bits_per_pattern * 5
        assert test_set.total_bits == test_set.stimulus_bits + test_set.response_bits

    def test_flit_counts(self):
        module = make_module(inputs=4, outputs=6, chain_lengths=(10, 10), patterns=5)
        test_set = TestSet.from_wrapper(design_wrapper(module, width=4))
        assert test_set.stimulus_flits(32) == -(-test_set.stimulus_bits // 32)
        assert test_set.response_flits(32) == -(-test_set.response_bits // 32)

    def test_flit_counts_reject_bad_width(self):
        module = make_module()
        test_set = TestSet.from_wrapper(design_wrapper(module, width=4))
        with pytest.raises(ValueError):
            test_set.stimulus_flits(0)
