"""Unit tests for the .soc parser."""

import pytest

from repro.errors import BenchmarkFormatError
from repro.itc02.parser import parse_soc, parse_soc_file, parse_soc_lines

VALID = """
# a comment
SocName demo
TotalModules 2

Module 1 alpha
  Inputs 4
  Outputs 5
  Bidirs 1
  ScanChains 2
  ScanChainLengths 10 12
  Patterns 7
  Power 33.5
EndModule

Module 2 beta   # trailing comment
  Inputs 3
  Outputs 3
  Patterns 2
EndModule
"""


class TestParseValid:
    def test_parses_modules(self):
        benchmark = parse_soc(VALID)
        assert benchmark.name == "demo"
        assert benchmark.module_count == 2
        alpha = benchmark.module_by_name("alpha")
        assert alpha.inputs == 4
        assert alpha.outputs == 5
        assert alpha.bidirs == 1
        assert alpha.scan_chain_lengths == (10, 12)
        assert alpha.patterns == 7
        assert alpha.power == pytest.approx(33.5)

    def test_defaults_for_optional_fields(self):
        beta = parse_soc(VALID).module_by_name("beta")
        assert beta.bidirs == 0
        assert beta.scan_chain_count == 0
        assert beta.power == 0.0

    def test_parse_lines_equivalent(self):
        from_lines = parse_soc_lines(VALID.splitlines())
        assert from_lines.module_count == 2

    def test_parse_file(self, tmp_path):
        path = tmp_path / "demo.soc"
        path.write_text(VALID)
        benchmark = parse_soc_file(path)
        assert benchmark.name == "demo"


class TestParseErrors:
    def test_missing_socname(self):
        with pytest.raises(BenchmarkFormatError, match="SocName"):
            parse_soc("Module 1 a\n  Inputs 1\n  Outputs 1\n  Patterns 1\nEndModule")

    def test_no_socname_at_all(self):
        with pytest.raises(BenchmarkFormatError, match="no SocName"):
            parse_soc("# empty file\n")

    def test_duplicate_socname(self):
        with pytest.raises(BenchmarkFormatError, match="duplicate SocName"):
            parse_soc("SocName a\nSocName b\n")

    def test_total_modules_mismatch(self):
        text = VALID.replace("TotalModules 2", "TotalModules 5")
        with pytest.raises(BenchmarkFormatError, match="TotalModules"):
            parse_soc(text)

    def test_unknown_keyword(self):
        text = VALID.replace("  Bidirs 1", "  Frobnicate 1")
        with pytest.raises(BenchmarkFormatError, match="unknown keyword"):
            parse_soc(text)

    def test_keyword_outside_module(self):
        with pytest.raises(BenchmarkFormatError, match="outside a Module block"):
            parse_soc("SocName x\nInputs 3\n")

    def test_unclosed_module_block(self):
        with pytest.raises(BenchmarkFormatError, match="not closed"):
            parse_soc("SocName x\nModule 1 a\n  Inputs 1\n  Outputs 1\n  Patterns 1\n")

    def test_end_module_without_module(self):
        with pytest.raises(BenchmarkFormatError, match="EndModule without"):
            parse_soc("SocName x\nEndModule\n")

    def test_missing_required_field(self):
        text = (
            "SocName x\nModule 1 a\n  Inputs 1\n  Outputs 1\nEndModule\n"
        )
        with pytest.raises(BenchmarkFormatError, match="Patterns"):
            parse_soc(text)

    def test_scan_chain_count_mismatch(self):
        text = (
            "SocName x\nModule 1 a\n  Inputs 1\n  Outputs 1\n  Patterns 1\n"
            "  ScanChains 3\n  ScanChainLengths 5 5\nEndModule\n"
        )
        with pytest.raises(BenchmarkFormatError, match="scan chains"):
            parse_soc(text)

    def test_non_integer_value(self):
        text = VALID.replace("Inputs 4", "Inputs four")
        with pytest.raises(BenchmarkFormatError, match="integer"):
            parse_soc(text)

    def test_negative_value(self):
        text = VALID.replace("Inputs 4", "Inputs -4")
        with pytest.raises(BenchmarkFormatError, match="non-negative"):
            parse_soc(text)

    def test_error_carries_line_number(self):
        text = VALID.replace("Inputs 4", "Inputs four")
        with pytest.raises(BenchmarkFormatError) as excinfo:
            parse_soc(text)
        assert excinfo.value.line_number is not None
        assert "line" in str(excinfo.value)

    def test_duplicate_field_in_module(self):
        text = VALID.replace("  Bidirs 1", "  Inputs 9")
        with pytest.raises(BenchmarkFormatError, match="duplicate Inputs"):
            parse_soc(text)

    def test_nested_module_block(self):
        text = (
            "SocName x\nModule 1 a\n  Inputs 1\n  Outputs 1\n  Patterns 1\n"
            "Module 2 b\nEndModule\n"
        )
        with pytest.raises(BenchmarkFormatError, match="not closed"):
            parse_soc(text)
