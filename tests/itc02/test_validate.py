"""Tests of benchmark structural validation."""

import pytest

from repro.errors import BenchmarkValidationError
from repro.itc02.model import Module, SocBenchmark
from repro.itc02.validate import validate_benchmark

from tests.conftest import make_benchmark, make_module


class TestValidateBenchmark:
    def test_valid_benchmark_passes(self):
        validate_benchmark(make_benchmark())

    def test_empty_benchmark_rejected(self):
        with pytest.raises(BenchmarkValidationError, match="no modules"):
            validate_benchmark(SocBenchmark(name="empty"))

    def test_module_without_patterns_rejected(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", patterns=0))
        with pytest.raises(BenchmarkValidationError, match="no test patterns"):
            validate_benchmark(benchmark)

    def test_module_without_terminals_rejected(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(
            Module(number=1, name="void", inputs=0, outputs=0, patterns=5)
        )
        with pytest.raises(BenchmarkValidationError, match="no terminals"):
            validate_benchmark(benchmark)

    def test_power_required_when_requested(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", power=0.0))
        validate_benchmark(benchmark)  # fine without the flag
        with pytest.raises(BenchmarkValidationError, match="power"):
            validate_benchmark(benchmark, require_power=True)

    def test_duplicates_rejected_defensively(self):
        # Bypass add_module's checks by mutating the list directly to make
        # sure the validator catches corruption introduced elsewhere.
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", number=1))
        benchmark.modules.append(make_module("a", number=1))
        with pytest.raises(BenchmarkValidationError, match="duplicate"):
            validate_benchmark(benchmark)
