"""Tests of the synthetic benchmark generator."""

import pytest

from repro.cores.wrapper import design_wrapper
from repro.errors import ConfigurationError
from repro.itc02.synth import (
    P22810_SPEC,
    P93791_SPEC,
    SyntheticSocSpec,
    generate_benchmark,
)
from repro.itc02.validate import validate_benchmark


def serial_test_time(benchmark, width):
    """Sum of per-module wrapper test times over a width-bit TAM."""
    return sum(design_wrapper(module, width).test_time for module in benchmark.modules)


class TestSpecValidation:
    def test_rejects_zero_modules(self):
        with pytest.raises(ConfigurationError):
            SyntheticSocSpec(name="x", module_count=0, target_serial_test_time=100)

    def test_rejects_dominant_fraction_sum_over_one(self):
        with pytest.raises(ConfigurationError):
            SyntheticSocSpec(
                name="x",
                module_count=4,
                target_serial_test_time=100,
                dominant_fractions=(0.6, 0.5),
            )

    def test_rejects_more_dominants_than_modules(self):
        with pytest.raises(ConfigurationError):
            SyntheticSocSpec(
                name="x",
                module_count=2,
                target_serial_test_time=100,
                dominant_fractions=(0.2, 0.2, 0.2),
            )

    def test_rejects_non_positive_target(self):
        with pytest.raises(ConfigurationError):
            SyntheticSocSpec(name="x", module_count=2, target_serial_test_time=0)


class TestGeneration:
    def test_deterministic(self):
        first = generate_benchmark(P22810_SPEC)
        second = generate_benchmark(P22810_SPEC)
        assert first.module_count == second.module_count
        for a, b in zip(first.modules, second.modules):
            assert a == b

    def test_different_seeds_differ(self):
        spec_a = SyntheticSocSpec(name="a", module_count=8, target_serial_test_time=50_000, seed=1)
        spec_b = SyntheticSocSpec(name="a", module_count=8, target_serial_test_time=50_000, seed=2)
        a = generate_benchmark(spec_a)
        b = generate_benchmark(spec_b)
        assert [m.patterns for m in a.modules] != [m.patterns for m in b.modules]

    def test_module_count_respected(self):
        spec = SyntheticSocSpec(name="x", module_count=13, target_serial_test_time=20_000)
        assert generate_benchmark(spec).module_count == 13

    def test_generated_benchmark_validates(self):
        spec = SyntheticSocSpec(name="x", module_count=10, target_serial_test_time=20_000)
        validate_benchmark(generate_benchmark(spec), require_power=True)

    @pytest.mark.parametrize("spec", [P22810_SPEC, P93791_SPEC], ids=lambda s: s.name)
    def test_calibration_hits_target_roughly(self, spec):
        benchmark = generate_benchmark(spec)
        measured = serial_test_time(benchmark, spec.calibration_width)
        assert measured == pytest.approx(spec.target_serial_test_time, rel=0.25)

    def test_dominant_modules_dominate(self):
        benchmark = generate_benchmark(P93791_SPEC)
        times = sorted(
            (design_wrapper(m, 32).test_time for m in benchmark.modules), reverse=True
        )
        total = sum(times)
        # The largest module should carry a substantial share of the total
        # test time, mirroring the heavy-tailed structure of the original.
        assert times[0] / total > 0.15

    def test_power_attached_to_every_module(self):
        benchmark = generate_benchmark(P22810_SPEC)
        assert all(module.power > 0 for module in benchmark.modules)
