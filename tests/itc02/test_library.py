"""Tests of the embedded benchmark library and bundled data files."""

import pytest

from repro.errors import UnknownBenchmarkError
from repro.itc02.library import (
    available_benchmarks,
    data_directory,
    export_benchmarks,
    load_benchmark,
)
from repro.itc02.parser import parse_soc_file
from repro.itc02.validate import validate_benchmark


class TestLibrary:
    def test_available_benchmarks_matches_paper(self):
        assert available_benchmarks() == ("d695", "p22810", "p93791")

    def test_unknown_benchmark_raises(self):
        with pytest.raises(UnknownBenchmarkError, match="available benchmarks"):
            load_benchmark("p12345")

    def test_load_is_case_insensitive(self):
        assert load_benchmark("D695") is load_benchmark("d695")

    def test_load_is_cached(self):
        assert load_benchmark("p22810") is load_benchmark("p22810")

    @pytest.mark.parametrize("name", ["d695", "p22810", "p93791"])
    def test_embedded_benchmarks_validate(self, name):
        validate_benchmark(load_benchmark(name), require_power=True)

    def test_d695_matches_published_structure(self):
        d695 = load_benchmark("d695")
        assert d695.module_count == 10
        s38417 = d695.module_by_name("s38417")
        assert s38417.patterns == 68
        assert s38417.scan_chain_count == 32
        assert s38417.scan_cells == 1636
        s13207 = d695.module_by_name("s13207")
        assert s13207.patterns == 234
        c6288 = d695.module_by_name("c6288")
        assert c6288.is_combinational

    def test_module_counts_match_paper_totals(self):
        # The paper builds systems with 16, 36 and 40 cores by adding 6/8/8
        # processors, so the benchmarks must have 10, 28 and 32 modules.
        assert load_benchmark("d695").module_count == 10
        assert load_benchmark("p22810").module_count == 28
        assert load_benchmark("p93791").module_count == 32

    def test_large_benchmarks_dwarf_d695(self):
        d695 = load_benchmark("d695").total_test_data_volume_bits
        p22810 = load_benchmark("p22810").total_test_data_volume_bits
        p93791 = load_benchmark("p93791").total_test_data_volume_bits
        assert p22810 > 5 * d695
        assert p93791 > p22810

    def test_export_benchmarks(self, tmp_path):
        written = export_benchmarks(tmp_path)
        assert len(written) == 3
        for path in written:
            assert path.exists()
            parsed = parse_soc_file(path)
            assert parsed.module_count == load_benchmark(parsed.name).module_count


class TestBundledDataFiles:
    @pytest.mark.parametrize("name", ["d695", "p22810", "p93791"])
    def test_bundled_soc_files_match_library(self, name):
        path = data_directory() / f"{name}.soc"
        assert path.exists(), "bundled .soc files should ship with the package"
        parsed = parse_soc_file(path)
        embedded = load_benchmark(name)
        assert parsed.module_count == embedded.module_count
        for a, b in zip(parsed.modules, embedded.modules):
            assert a == b
