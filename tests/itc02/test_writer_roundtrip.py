"""Writer tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.itc02.library import load_benchmark
from repro.itc02.model import Module, ScanChain, SocBenchmark
from repro.itc02.parser import parse_soc
from repro.itc02.writer import write_soc, write_soc_file


def modules_strategy():
    """Hypothesis strategy generating valid modules."""
    chain = st.integers(min_value=1, max_value=200)
    return st.builds(
        lambda number, name, inputs, outputs, bidirs, chains, patterns, power: Module(
            number=number,
            name=name,
            inputs=inputs,
            outputs=outputs,
            bidirs=bidirs,
            scan_chains=tuple(ScanChain(index=i, length=length) for i, length in enumerate(chains)),
            patterns=patterns,
            power=power,
        ),
        number=st.integers(min_value=1, max_value=10_000),
        name=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
            min_size=1,
            max_size=12,
        ),
        inputs=st.integers(min_value=0, max_value=500),
        outputs=st.integers(min_value=0, max_value=500),
        bidirs=st.integers(min_value=0, max_value=50),
        chains=st.lists(chain, min_size=0, max_size=16),
        patterns=st.integers(min_value=0, max_value=5000),
        power=st.integers(min_value=0, max_value=5000).map(float),
    )


def benchmarks_strategy():
    """Hypothesis strategy generating valid benchmarks with unique modules."""

    def build(name, modules):
        benchmark = SocBenchmark(name=name)
        for index, module in enumerate(modules, start=1):
            benchmark.add_module(
                Module(
                    number=index,
                    name=f"{module.name}_{index}",
                    inputs=module.inputs,
                    outputs=module.outputs,
                    bidirs=module.bidirs,
                    scan_chains=module.scan_chains,
                    patterns=module.patterns,
                    power=module.power,
                )
            )
        return benchmark

    return st.builds(
        build,
        name=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1,
            max_size=10,
        ),
        modules=st.lists(modules_strategy(), min_size=1, max_size=8),
    )


class TestWriter:
    def test_writer_output_is_parseable(self, d695):
        text = write_soc(d695)
        parsed = parse_soc(text)
        assert parsed.module_count == d695.module_count

    def test_write_file(self, tmp_path, d695):
        path = tmp_path / "d695.soc"
        write_soc_file(d695, path)
        assert path.exists()
        assert "SocName d695" in path.read_text()

    @pytest.mark.parametrize("name", ["d695", "p22810", "p93791"])
    def test_embedded_benchmarks_roundtrip_exactly(self, name):
        original = load_benchmark(name)
        parsed = parse_soc(write_soc(original))
        assert parsed.name == original.name
        assert parsed.module_count == original.module_count
        for before, after in zip(original.modules, parsed.modules):
            assert before == after

    @settings(max_examples=60, deadline=None)
    @given(benchmark=benchmarks_strategy())
    def test_roundtrip_property(self, benchmark):
        parsed = parse_soc(write_soc(benchmark))
        assert parsed.name == benchmark.name
        assert parsed.module_count == benchmark.module_count
        for before, after in zip(benchmark.modules, parsed.modules):
            assert before.name == after.name
            assert before.inputs == after.inputs
            assert before.outputs == after.outputs
            assert before.bidirs == after.bidirs
            assert before.scan_chain_lengths == after.scan_chain_lengths
            assert before.patterns == after.patterns
            assert before.power == pytest.approx(after.power)
