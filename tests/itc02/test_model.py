"""Unit tests for the ITC'02 benchmark data model."""

import pytest

from repro.errors import BenchmarkValidationError
from repro.itc02.model import Module, ScanChain, SocBenchmark

from tests.conftest import make_module


class TestScanChain:
    def test_valid_chain(self):
        chain = ScanChain(index=0, length=12)
        assert chain.length == 12

    def test_negative_index_rejected(self):
        with pytest.raises(BenchmarkValidationError):
            ScanChain(index=-1, length=12)

    def test_zero_length_rejected(self):
        with pytest.raises(BenchmarkValidationError):
            ScanChain(index=0, length=0)


class TestModule:
    def test_scan_cell_total(self):
        module = make_module(chain_lengths=(10, 20, 30))
        assert module.scan_cells == 60
        assert module.scan_chain_count == 3
        assert module.scan_chain_lengths == (10, 20, 30)

    def test_combinational_module(self):
        module = make_module(chain_lengths=())
        assert module.is_combinational
        assert module.scan_cells == 0

    def test_bits_per_pattern(self):
        module = Module(
            number=1,
            name="m",
            inputs=5,
            outputs=7,
            bidirs=2,
            scan_chains=(ScanChain(0, 10),),
            patterns=3,
        )
        assert module.scan_in_bits_per_pattern == 5 + 2 + 10
        assert module.scan_out_bits_per_pattern == 7 + 2 + 10
        assert module.test_data_volume_bits == 3 * (17 + 19)

    def test_negative_counts_rejected(self):
        with pytest.raises(BenchmarkValidationError):
            Module(number=1, name="m", inputs=-1, outputs=0, patterns=1)

    def test_module_number_must_be_positive(self):
        with pytest.raises(BenchmarkValidationError):
            Module(number=0, name="m", inputs=1, outputs=1, patterns=1)

    def test_with_power_returns_copy(self):
        module = make_module(power=0.0)
        powered = module.with_power(42.0)
        assert powered.power == 42.0
        assert module.power == 0.0
        assert powered.name == module.name


class TestSocBenchmark:
    def test_totals(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", number=1, patterns=10, power=5.0))
        benchmark.add_module(make_module("b", number=2, patterns=20, power=7.0))
        assert benchmark.module_count == 2
        assert benchmark.total_patterns == 30
        assert benchmark.total_power == 12.0
        assert len(benchmark) == 2

    def test_lookup_by_number_and_name(self):
        benchmark = SocBenchmark(name="b")
        module = make_module("alpha", number=3)
        benchmark.add_module(module)
        assert benchmark.module_by_number(3) is module
        assert benchmark.module_by_name("alpha") is module
        with pytest.raises(KeyError):
            benchmark.module_by_number(99)
        with pytest.raises(KeyError):
            benchmark.module_by_name("nope")

    def test_duplicate_module_number_rejected(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", number=1))
        with pytest.raises(BenchmarkValidationError):
            benchmark.add_module(make_module("b", number=1))

    def test_duplicate_module_name_rejected(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", number=1))
        with pytest.raises(BenchmarkValidationError):
            benchmark.add_module(make_module("a", number=2))

    def test_empty_name_rejected(self):
        with pytest.raises(BenchmarkValidationError):
            SocBenchmark(name="")

    def test_with_powers_requires_matching_length(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", number=1))
        with pytest.raises(BenchmarkValidationError):
            benchmark.with_powers([1.0, 2.0])

    def test_with_powers_assigns_in_order(self):
        benchmark = SocBenchmark(name="b")
        benchmark.add_module(make_module("a", number=1))
        benchmark.add_module(make_module("b", number=2))
        powered = benchmark.with_powers([11.0, 22.0])
        assert [m.power for m in powered.modules] == [11.0, 22.0]

    def test_summary_mentions_name_and_counts(self):
        benchmark = SocBenchmark(name="widget")
        benchmark.add_module(make_module("a", number=1))
        text = benchmark.summary()
        assert "widget" in text
        assert "1 modules" in text
