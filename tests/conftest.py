"""Shared fixtures for the test suite.

The fixtures build small, fast systems so that the unit tests stay quick; the
paper-sized systems are exercised by the integration tests and the benchmark
harness.
"""

from __future__ import annotations

import pytest

from repro.cores.core import build_core
from repro.itc02.library import load_benchmark
from repro.itc02.model import Module, ScanChain, SocBenchmark
from repro.noc.network import Network, NocConfig
from repro.processors.leon import leon_processor
from repro.processors.plasma import plasma_processor
from repro.system.builder import SystemBuilder
from repro.tam.ports import PortDirection


def make_module(
    name: str = "core",
    *,
    number: int = 1,
    inputs: int = 8,
    outputs: int = 8,
    chain_lengths: tuple[int, ...] = (20, 20),
    patterns: int = 10,
    power: float = 100.0,
) -> Module:
    """Convenience constructor for a small test module."""
    chains = tuple(ScanChain(index=i, length=length) for i, length in enumerate(chain_lengths))
    return Module(
        number=number,
        name=name,
        inputs=inputs,
        outputs=outputs,
        bidirs=0,
        scan_chains=chains,
        patterns=patterns,
        power=power,
    )


def make_benchmark(module_count: int = 4, name: str = "toy") -> SocBenchmark:
    """A small benchmark with ``module_count`` modules of increasing size."""
    benchmark = SocBenchmark(name=name)
    for index in range(1, module_count + 1):
        benchmark.add_module(
            make_module(
                name=f"m{index}",
                number=index,
                inputs=4 + index,
                outputs=4 + index,
                chain_lengths=(10 * index, 10 * index),
                patterns=5 + 3 * index,
                power=50.0 * index,
            )
        )
    return benchmark


@pytest.fixture
def toy_benchmark() -> SocBenchmark:
    """A four-module synthetic benchmark."""
    return make_benchmark()


@pytest.fixture
def d695() -> SocBenchmark:
    """The embedded d695 benchmark."""
    return load_benchmark("d695")


@pytest.fixture
def small_network() -> Network:
    """A 3x3 NoC with default timing."""
    return Network(NocConfig(width=3, height=3, flit_width=16))


@pytest.fixture
def toy_system(toy_benchmark):
    """A small complete system: toy benchmark + 2 Plasma processors on 3x3."""
    return (
        SystemBuilder("toy_plasma", NocConfig(width=3, height=3, flit_width=16))
        .add_benchmark(toy_benchmark)
        .add_processors(plasma_processor(), 2)
        .add_io_port("ext_in", (0, 0), PortDirection.INPUT)
        .add_io_port("ext_out", (2, 2), PortDirection.OUTPUT)
        .build()
    )


@pytest.fixture
def leon():
    """The default Leon processor characterisation."""
    return leon_processor()


@pytest.fixture
def plasma():
    """The default Plasma processor characterisation."""
    return plasma_processor()


@pytest.fixture
def placed_core(small_network):
    """A single wrapped core placed at (1, 1) on the small network."""
    core = build_core(make_module("lone"), flit_width=small_network.flit_width)
    core.place_at((1, 1))
    return core
