"""Tests of the makespan lower bounds and efficiency reporting."""

import pytest

from repro.analysis.bounds import (
    bound_report,
    makespan_lower_bounds,
    schedule_efficiency,
)
from repro.schedule.planner import TestPlanner
from repro.system.presets import build_paper_system


class TestMakespanBounds:
    def test_bounds_are_true_lower_bounds_on_toy_system(self, toy_system):
        planner = TestPlanner(toy_system)
        for count in (0, 2):
            bounds = makespan_lower_bounds(toy_system, reused_processors=count)
            result = planner.plan(reused_processors=count)
            assert bounds.tightest <= result.makespan
            assert bounds.critical_core <= result.makespan
            assert bounds.resource_work <= result.makespan

    def test_noproc_bottleneck_equals_serial_work(self, toy_system):
        bounds = makespan_lower_bounds(toy_system, reused_processors=0)
        result = TestPlanner(toy_system).plan(reused_processors=0)
        # With a single external interface the bottleneck bound is the whole
        # serial workload, and the greedy schedule achieves exactly that.
        assert bounds.bottleneck == result.makespan
        assert bounds.tightest == result.makespan

    def test_more_interfaces_weaken_the_work_bound(self, toy_system):
        noproc = makespan_lower_bounds(toy_system, reused_processors=0)
        reuse = makespan_lower_bounds(toy_system, reused_processors=2)
        assert reuse.resource_work <= noproc.resource_work

    def test_bounds_hold_for_paper_system(self):
        system = build_paper_system("d695_leon")
        result = TestPlanner(system).plan(reused_processors=6)
        bounds = makespan_lower_bounds(system, reused_processors=6)
        assert bounds.tightest <= result.makespan


class TestScheduleEfficiency:
    def test_noproc_schedule_is_provably_optimal(self, toy_system):
        result = TestPlanner(toy_system).plan(reused_processors=0)
        bounds = makespan_lower_bounds(toy_system, reused_processors=0)
        assert schedule_efficiency(result, bounds) == pytest.approx(1.0)

    def test_efficiency_bounded_by_one(self, toy_system):
        result = TestPlanner(toy_system).plan(reused_processors=2)
        bounds = makespan_lower_bounds(toy_system, reused_processors=2)
        assert 0.0 < schedule_efficiency(result, bounds) <= 1.0


class TestBoundReport:
    def test_report_mentions_all_bounds(self, toy_system):
        result = TestPlanner(toy_system).plan(reused_processors=2)
        text = bound_report(toy_system, result)
        assert "critical core bound" in text
        assert "resource work bound" in text
        assert "bound efficiency" in text
        assert str(result.makespan) in text
