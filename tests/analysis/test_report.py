"""Tests of the text report renderers and the Gantt chart."""

import pytest

from repro.analysis.gantt import gantt_chart
from repro.analysis.report import schedule_report, sweep_table
from repro.schedule.planner import TestPlanner
from repro.schedule.power import PowerConstraint
from repro.schedule.result import ScheduleResult


@pytest.fixture
def planner(toy_system):
    return TestPlanner(toy_system)


class TestSweepTable:
    def test_contains_all_rows_and_series(self, planner):
        sweeps = {
            "no power limit": planner.sweep_processor_counts([0, 2]),
            "75% power limit": planner.sweep_processor_counts([0, 2], power_limit_fraction=0.75),
        }
        table = sweep_table(sweeps, title="toy panel")
        assert "toy panel" in table
        assert "noproc" in table
        assert "2proc" in table
        assert "no power limit [cycles]" in table
        assert "75% power limit [cycles]" in table
        # Baseline rows show a 0.0% reduction.
        assert "0.0%" in table

    def test_empty_input(self):
        assert "(no data)" in sweep_table({})


class TestScheduleReport:
    def test_mentions_key_metrics(self, planner):
        result = planner.plan(reused_processors=2)
        report = schedule_report(result)
        assert "makespan" in report
        assert str(result.makespan) in report
        assert "ext0" in report
        assert "proc.plasma1" in report


class TestGanttChart:
    def test_contains_interfaces_and_axis(self, planner):
        result = planner.plan(reused_processors=2)
        chart = gantt_chart(result, width=80)
        assert "ext0" in chart
        assert str(result.makespan) in chart
        assert "#" in chart

    def test_empty_schedule(self):
        result = ScheduleResult(
            system_name="empty",
            scheduler_name="none",
            assignments=[],
            interfaces=[],
            power_constraint=PowerConstraint.unconstrained(),
        )
        assert "empty schedule" in gantt_chart(result)

    def test_tiny_width_clamped(self, planner):
        result = planner.plan(reused_processors=0)
        chart = gantt_chart(result, width=3)
        assert "#" in chart
