"""Tests of the cross-run history queries over the sqlite sweep store."""

import pytest

from repro.analysis.history import (
    history_report,
    makespan_trajectory,
    makespan_trajectory_sql,
    scheduler_win_rates,
    scheduler_win_rates_sql,
    trajectory_table,
    win_rate_table,
)
from repro.runner.db import SweepDatabase
from repro.runner.engine import SweepRunner
from repro.runner.spec import SweepSpec


def _record(system, scheduler, makespan, *, index=0, reuse=2, power="no power limit"):
    return {
        "index": index,
        "system": system,
        "scheduler": scheduler,
        "makespan": makespan,
        "reused_processors": reuse,
        "power_label": power,
        "flit_width": 32,
        "pattern_penalty": None,
    }


class TestWinRates:
    def test_single_scheduler_has_no_contests(self):
        records = [_record("d695_leon", "greedy", 100, index=i) for i in range(3)]
        assert scheduler_win_rates(records) == []

    def test_faster_scheduler_wins_the_coordinate(self):
        records = [
            _record("d695_leon", "greedy", 120),
            _record("d695_leon", "fastest-completion", 100),
        ]
        by_name = {row.scheduler: row for row in scheduler_win_rates(records)}
        assert by_name["fastest-completion"].wins == 1
        assert by_name["fastest-completion"].win_rate == 1.0
        assert by_name["greedy"].wins == 0
        assert by_name["greedy"].contests == 1

    def test_tie_counts_as_shared_win(self):
        records = [
            _record("d695_leon", "greedy", 100),
            _record("d695_leon", "fastest-completion", 100),
        ]
        rows = scheduler_win_rates(records)
        assert all(row.wins == 1 and row.ties == 1 for row in rows)

    def test_coordinates_keep_contests_apart(self):
        """Different reuse levels are different contests; win rates aggregate
        across them per system."""
        records = [
            _record("d695_leon", "greedy", 100, reuse=0),
            _record("d695_leon", "fastest-completion", 110, reuse=0),
            _record("d695_leon", "greedy", 120, reuse=4),
            _record("d695_leon", "fastest-completion", 90, reuse=4),
        ]
        by_name = {row.scheduler: row for row in scheduler_win_rates(records)}
        assert by_name["greedy"].contests == 2
        assert by_name["greedy"].wins == 1
        assert by_name["greedy"].win_rate == 0.5

    def test_duplicate_coordinate_takes_best_makespan(self):
        """The same coordinate stored by several sweeps competes with its
        best stored makespan, not one row per sweep."""
        records = [
            _record("d695_leon", "greedy", 150),
            _record("d695_leon", "greedy", 100),
            _record("d695_leon", "fastest-completion", 120),
        ]
        by_name = {row.scheduler: row for row in scheduler_win_rates(records)}
        assert by_name["greedy"].contests == 1
        assert by_name["greedy"].wins == 1

    def test_table_renders(self):
        records = [
            _record("d695_leon", "greedy", 120),
            _record("d695_leon", "fastest-completion", 100),
        ]
        table = win_rate_table(scheduler_win_rates(records))
        assert "fastest-completion" in table
        assert "100.0%" in table
        assert "(no scheduler contests" in win_rate_table([])


class TestTrajectory:
    def test_groups_by_run_and_system(self):
        rows = [
            {
                "run_id": 1,
                "created_at": "t1",
                "sweep_name": "s",
                "record": {"system": "d695_leon", "makespan": 100},
            },
            {
                "run_id": 1,
                "created_at": "t1",
                "sweep_name": "s",
                "record": {"system": "d695_leon", "makespan": 200},
            },
            {
                "run_id": 2,
                "created_at": "t2",
                "sweep_name": "s",
                "record": {"system": "d695_leon", "makespan": 90},
            },
        ]
        first, second = makespan_trajectory(rows)
        assert (first.run_id, first.record_count) == (1, 2)
        assert first.best_makespan == 100
        assert first.mean_makespan == pytest.approx(150.0)
        assert (second.run_id, second.best_makespan) == (2, 90)
        assert "90" in trajectory_table([first, second])


class TestHistoryReport:
    @pytest.fixture(scope="class")
    def populated(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("history") / "sweeps.db"
        spec = SweepSpec(
            name="history-grid",
            systems=("d695_plasma",),
            processor_counts=(0, 6),
            power_limits={"no power limit": None},
            schedulers=("greedy", "fastest-completion"),
        )
        db = SweepDatabase(path)
        SweepRunner(jobs=1).run_stored(spec, db)
        yield db
        db.close()

    def test_report_sections(self, populated):
        report = history_report(populated)
        assert "Sweep store" in report
        assert "history-grid" in report
        assert "Scheduler win-rates" in report
        assert "Makespan over runs" in report
        assert "d695_plasma" in report

    def test_system_filter(self, populated):
        report = history_report(populated, system="d695_leon")
        assert "(no scheduler contests" in report
        assert "(no stored runs)" in report


class TestSqlAggregation:
    """The SQL push-down must match the pure-Python aggregation exactly."""

    @pytest.fixture(scope="class")
    def populated(self, tmp_path_factory):
        """A store with history depth: two runs of a two-scheduler grid plus
        a second sweep overlapping the same coordinates."""
        path = tmp_path_factory.mktemp("sql-history") / "sweeps.db"
        contested = SweepSpec(
            name="sql-grid",
            systems=("d695_plasma",),
            processor_counts=(0, 2, 6),
            power_limits={"no power limit": None, "50% power limit": 0.5},
            schedulers=("greedy", "fastest-completion"),
        )
        overlapping = SweepSpec(
            name="sql-overlap",
            systems=("d695_plasma", "d695_leon"),
            processor_counts=(0, 2),
            schedulers=("greedy",),
        )
        runner = SweepRunner(jobs=1)
        db = SweepDatabase(path)
        runner.run_stored(contested, db)
        runner.run_stored(contested, db)
        runner.run_stored(overlapping, db)
        yield db
        db.close()

    @staticmethod
    def _flat_records(db):
        return [record for sweep in db.stored_sweeps() for record in sweep.records]

    def test_win_rates_sql_equals_python(self, populated):
        expected = scheduler_win_rates(self._flat_records(populated))
        assert expected  # the grid produces real contests
        assert scheduler_win_rates_sql(populated) == expected

    def test_win_rates_sql_system_filter(self, populated):
        records = [
            r for r in self._flat_records(populated) if r.get("system") == "d695_leon"
        ]
        assert scheduler_win_rates_sql(populated, system="d695_leon") == (
            scheduler_win_rates(records)
        )

    def test_trajectory_sql_equals_python(self, populated):
        expected = makespan_trajectory(populated.history_rows())
        assert len(expected) >= 3  # two runs of sweep 1, one run over two systems
        assert makespan_trajectory_sql(populated) == expected

    def test_trajectory_sql_system_filter(self, populated):
        rows = [
            row
            for row in populated.history_rows()
            if row["record"].get("system") == "d695_plasma"
        ]
        assert makespan_trajectory_sql(populated, system="d695_plasma") == (
            makespan_trajectory(rows)
        )

    def test_trajectory_means_are_bit_identical(self, populated):
        """The SQL path must reproduce the Python float mean exactly, not
        merely approximately — the report output is diffed byte-for-byte."""
        python_means = [
            row.mean_makespan for row in makespan_trajectory(populated.history_rows())
        ]
        sql_means = [row.mean_makespan for row in makespan_trajectory_sql(populated)]
        assert sql_means == python_means  # exact ==, no pytest.approx

    def test_report_uses_sql_aggregates(self, populated):
        """history_report renders the same tables the Python reducers would."""
        report = history_report(populated)
        assert win_rate_table(
            scheduler_win_rates(self._flat_records(populated))
        ) in report
        assert trajectory_table(
            makespan_trajectory(populated.history_rows())
        ) in report
