"""Tests of schedule metrics."""

import pytest

from repro.analysis.metrics import compare_schedules, compute_metrics, reduction_table
from repro.schedule.planner import TestPlanner


@pytest.fixture
def planner(toy_system):
    return TestPlanner(toy_system)


class TestComputeMetrics:
    def test_metrics_of_noproc_schedule(self, planner, toy_system):
        result = planner.plan(reused_processors=0)
        metrics = compute_metrics(result)
        assert metrics.makespan == result.makespan
        assert metrics.test_count == toy_system.core_count
        assert metrics.external_share == pytest.approx(1.0)
        assert metrics.average_parallelism == pytest.approx(1.0, abs=0.05)
        assert 0.0 < metrics.interface_utilisation["ext0"] <= 1.0

    def test_processor_share_grows_with_reuse(self, planner):
        reuse = compute_metrics(planner.plan(reused_processors=2))
        assert reuse.external_share < 1.0
        assert any(
            utilisation > 0
            for name, utilisation in reuse.interface_utilisation.items()
            if name.startswith("proc")
        )


class TestCompareSchedules:
    def test_reduction_percent(self, planner):
        baseline = planner.plan(reused_processors=0)
        reuse = planner.plan(reused_processors=2)
        reduction = compare_schedules(baseline, reuse)
        expected = 100.0 * (baseline.makespan - reuse.makespan) / baseline.makespan
        assert reduction == pytest.approx(expected)


class TestReductionTable:
    def test_rows(self, planner):
        sweep = planner.sweep_processor_counts([0, 1, 2])
        rows = reduction_table(sweep)
        assert [row[0] for row in rows] == [0, 1, 2]
        assert rows[0][2] == pytest.approx(0.0)
        for count, makespan, reduction in rows:
            assert makespan == sweep[count].makespan

    def test_requires_baseline(self, planner):
        sweep = planner.sweep_processor_counts([1, 2])
        with pytest.raises(KeyError):
            reduction_table(sweep)
