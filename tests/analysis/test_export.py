"""Tests of CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.analysis.export import schedule_to_json, schedule_to_rows, sweep_to_csv
from repro.schedule.planner import TestPlanner


@pytest.fixture
def planner(toy_system):
    return TestPlanner(toy_system)


class TestScheduleToRows:
    def test_one_row_per_assignment(self, planner, toy_system):
        result = planner.plan(reused_processors=1)
        rows = schedule_to_rows(result)
        assert len(rows) == toy_system.core_count
        assert {row["core"] for row in rows} == set(toy_system.core_ids)
        for row in rows:
            assert row["end"] == row["start"] + row["duration"]


class TestScheduleToJson:
    def test_valid_json_with_expected_fields(self, planner):
        result = planner.plan(reused_processors=1, power_limit_fraction=0.75)
        document = json.loads(schedule_to_json(result))
        assert document["system"] == "toy_plasma"
        assert document["makespan"] == result.makespan
        assert document["power_constraint"]["limit"] == pytest.approx(
            result.power_constraint.limit
        )
        assert len(document["assignments"]) == result.test_count
        assert document["metadata"]["reused_processors"] == 1


class TestSweepToCsv:
    def test_csv_parses_back(self, planner):
        sweeps = {"no power limit": planner.sweep_processor_counts([0, 2])}
        text = sweep_to_csv(sweeps)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["series"] == "no power limit"
        assert int(rows[0]["processors"]) == 0
        assert int(rows[0]["makespan"]) == sweeps["no power limit"][0].makespan
