"""Chaos-driven integration tests of fault-tolerant orchestration.

The PR's acceptance criterion: with injected faults on up to half the
workers, ``orchestrate`` completes, retries are recorded, and the merged
export is byte-identical to a serial run — the merge invariant survives
every retry path.
"""

import json

import pytest

from repro.devtools.chaos import CHAOS_ENV
from repro.experiments.figure1 import figure1_spec
from repro.runner.backends import ShardWorkerBackend
from repro.runner.db import SweepDatabase
from repro.runner.dispatch import WorkerState
from repro.runner.engine import SweepRunner
from repro.runner.store import save_sweeps


@pytest.fixture(scope="module")
def spec():
    return figure1_spec("d695_leon")


@pytest.fixture(scope="module")
def serial_export(spec, tmp_path_factory):
    """The ground truth every chaos-ridden orchestration must reproduce."""
    out = tmp_path_factory.mktemp("serial") / "serial.json"
    return save_sweeps(out, [(spec, SweepRunner(jobs=1).run(spec))]).read_bytes()


def orchestrate_with_chaos(spec, tmp_path, monkeypatch, faults, **backend_kwargs):
    monkeypatch.setenv(CHAOS_ENV, json.dumps(faults))
    backend = ShardWorkerBackend(
        workers=3,
        max_retries=2,
        retry_backoff=0.05,
        checkpoint_every=1,
        **backend_kwargs,
    )
    with SweepDatabase(tmp_path / "merged.db") as db:
        report = SweepRunner(backend=backend).orchestrate(
            spec, db, workdir=tmp_path / "work"
        )
        exported = db.export_document(tmp_path / "merged.json").read_bytes()
        run_count = db.run_count(report.spec_key)
    return report, exported, run_count


def shard_run_counts(report):
    counts = []
    for worker in report.workers:
        with SweepDatabase(worker.store_path) as shard:
            counts.append(shard.run_count())
    return counts


class TestCrashRequeue:
    def test_mid_shard_crash_retries_and_merges_byte_identical(
        self, spec, tmp_path, monkeypatch, serial_export
    ):
        """Kill worker 0 after one committed point; the retry resumes the
        shard store and the merged export matches serial byte for byte."""
        report, exported, run_count = orchestrate_with_chaos(
            spec,
            tmp_path,
            monkeypatch,
            [{"kind": "crash", "shard": 0, "attempt": 1, "after_points": 1}],
        )
        assert exported == serial_export
        crashed = report.workers[0]
        assert crashed.retries == 1
        assert [a.state for a in crashed.attempts] == [
            WorkerState.FAILED,
            WorkerState.FINISHED,
        ]
        assert crashed.attempts[0].returncode == 70
        assert sum(w.retries for w in report.workers) == 1
        # carry_history folded every shard run (partial + resumed) in.
        assert run_count == sum(shard_run_counts(report))

    def test_faults_on_half_the_fleet(
        self, spec, tmp_path, monkeypatch, serial_export
    ):
        """Crashes on two of four workers (the acceptance bound) still
        converge to the serial export."""
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps(
                [
                    {"kind": "crash", "shard": 0, "attempt": 1, "after_points": 1},
                    {"kind": "crash", "shard": 2, "attempt": 1, "exit_code": 9},
                ]
            ),
        )
        backend = ShardWorkerBackend(
            workers=4, max_retries=2, retry_backoff=0.05, checkpoint_every=1
        )
        with SweepDatabase(tmp_path / "merged.db") as db:
            report = SweepRunner(backend=backend).orchestrate(
                spec, db, workdir=tmp_path / "work"
            )
            exported = db.export_document(tmp_path / "merged.json").read_bytes()
        assert exported == serial_export
        assert sum(w.retries for w in report.workers) == 2
        assert all(w.state is WorkerState.FINISHED for w in report.workers)


class TestHangRequeue:
    def test_stale_heartbeat_worker_declared_lost_then_requeued(
        self, spec, tmp_path, monkeypatch, serial_export
    ):
        """A worker that stops beating mid-shard is declared Lost, killed,
        and its shard resumed on a fresh attempt."""
        report, exported, run_count = orchestrate_with_chaos(
            spec,
            tmp_path,
            monkeypatch,
            [{"kind": "hang", "shard": 1, "attempt": 1, "after_points": 1}],
            heartbeat_timeout=1.5,
        )
        assert exported == serial_export
        hung = report.workers[1]
        assert hung.retries == 1
        assert hung.attempts[0].state is WorkerState.LOST
        assert hung.attempts[0].heartbeats >= 1
        assert run_count == sum(shard_run_counts(report))


class TestCorruptExitRequeue:
    def test_complete_shard_with_bad_exit_code_resumes_to_a_noop(
        self, spec, tmp_path, monkeypatch, serial_export
    ):
        """corrupt-exit completes the shard but exits nonzero: the retry's
        resume run must execute zero points and the export stays identical
        (idempotent merge, no duplicated records)."""
        report, exported, _ = orchestrate_with_chaos(
            spec,
            tmp_path,
            monkeypatch,
            [{"kind": "corrupt-exit", "shard": 0, "attempt": 1, "exit_code": 41}],
        )
        assert exported == serial_export
        assert report.workers[0].retries == 1
        assert report.workers[0].attempts[0].returncode == 41
        # the shard store already held every record, so the resumed attempt
        # is a pure no-op on the data: its run row executes zero points and
        # skips all three of the shard's points (checkpoint_every=1 gave the
        # first attempt one run row per point).
        with SweepDatabase(report.workers[0].store_path) as shard:
            runs = shard.runs()
        assert [run.executed_points for run in runs] == [1, 1, 1, 0]
        assert runs[-1].skipped_points == 3
        assert report.record_count == spec.point_count


class TestSlowStart:
    def test_straggler_completes_within_its_attempt(
        self, spec, tmp_path, monkeypatch, serial_export
    ):
        report, exported, _ = orchestrate_with_chaos(
            spec,
            tmp_path,
            monkeypatch,
            [{"kind": "slow-start", "shard": 2, "delay": 0.5}],
        )
        assert exported == serial_export
        assert sum(w.retries for w in report.workers) == 0


class TestExhaustedRetries:
    def test_unrecoverable_shard_fails_the_orchestration_with_history(
        self, spec, tmp_path, monkeypatch
    ):
        """A fault matching every attempt exhausts the retry budget; the
        error carries the attempt count and the store is labelled orphaned."""
        from repro.errors import OrchestrationError

        monkeypatch.setenv(
            CHAOS_ENV, json.dumps([{"kind": "crash", "shard": 1, "after_points": 1}])
        )
        backend = ShardWorkerBackend(
            workers=3, max_retries=1, retry_backoff=0.05, checkpoint_every=1
        )
        with SweepDatabase(tmp_path / "merged.db") as db:
            with pytest.raises(OrchestrationError, match="exited 70") as excinfo:
                SweepRunner(backend=backend).orchestrate(
                    spec, db, workdir=tmp_path / "work"
                )
            assert "2 attempt(s)" in str(excinfo.value)
            assert db.record_count() == 0  # failed orchestration merges nothing
        (orphan,) = (tmp_path / "work").rglob("*.orphaned.txt")
        assert "failed permanently" in orphan.read_text(encoding="utf-8")
