"""Integration tests across modules: full paper systems, cross-validation
against the circuit-switched simulator, and determinism."""

import pytest

from repro.analysis.metrics import compute_metrics
from repro.noc.simulator import CircuitSwitchedSimulator, TransferRequest
from repro.schedule.planner import TestPlanner
from repro.schedule.result import validate_schedule
from repro.system.presets import build_paper_system


@pytest.fixture(scope="module")
def d695_leon():
    return build_paper_system("d695_leon")


@pytest.fixture(scope="module")
def d695_plan(d695_leon):
    return TestPlanner(d695_leon).plan(reused_processors=6, power_limit_fraction=0.5)


class TestPaperSystemPlanning:
    def test_schedule_valid_for_every_paper_system(self):
        for name in ("d695_leon", "d695_plasma"):
            system = build_paper_system(name)
            planner = TestPlanner(system)
            for count in (0, len(system.processor_cores)):
                result = planner.plan(reused_processors=count, power_limit_fraction=0.5)
                validate_schedule(result, expected_core_ids=system.core_ids)

    def test_large_system_schedule_valid(self):
        system = build_paper_system("p93791_leon")
        result = TestPlanner(system).plan(reused_processors=8)
        validate_schedule(result, expected_core_ids=system.core_ids)
        assert result.test_count == 40

    def test_d695_noproc_matches_serial_sum(self, d695_leon):
        """With one external interface, the noproc test time must equal the
        sum of the individual test jobs (pure serialisation)."""
        result = TestPlanner(d695_leon).plan(reused_processors=0)
        assert result.makespan == sum(a.duration for a in result.assignments)

    def test_noproc_baseline_magnitude_matches_paper_axis(self, d695_leon):
        """The paper's Figure 1 d695 noproc bar sits near 160k cycles."""
        result = TestPlanner(d695_leon).plan(reused_processors=0)
        assert 120_000 <= result.makespan <= 210_000

    def test_processor_cores_tested_before_reuse(self, d695_plan, d695_leon):
        completion = {a.core_id: a.end for a in d695_plan.assignments}
        for assignment in d695_plan.assignments:
            if assignment.interface_id.startswith("proc."):
                processor_core = assignment.interface_id.split("proc.", 1)[1]
                assert completion[processor_core] <= assignment.start

    def test_power_ceiling_respected(self, d695_plan, d695_leon):
        limit = d695_leon.total_core_power * 0.5
        assert d695_plan.peak_power() <= limit + 1e-6

    def test_metrics_consistent(self, d695_plan):
        metrics = compute_metrics(d695_plan)
        assert metrics.makespan == d695_plan.makespan
        assert 1.0 <= metrics.average_parallelism <= len(d695_plan.interfaces)


class TestSimulatorCrossValidation:
    def test_schedule_replays_on_simulator_without_delays(self, d695_plan):
        """Feeding the schedule's transfers (with its start times as release
        times) to the circuit-switched simulator must reproduce the exact same
        start/end times: the schedule never over-commits a link or port."""
        simulator = CircuitSwitchedSimulator()
        for index, assignment in enumerate(d695_plan.assignments):
            simulator.add(
                TransferRequest(
                    name=assignment.core_id,
                    resources=assignment.job.resources,
                    duration=assignment.duration,
                    release_time=assignment.start,
                    priority=index,
                )
            )
        records = {record.name: record for record in simulator.run()}
        for assignment in d695_plan.assignments:
            record = records[assignment.core_id]
            assert record.start == assignment.start
            assert record.end == assignment.end

    def test_unconstrained_simulation_is_a_lower_bound(self, d695_plan):
        """Releasing every transfer at time 0 can only shorten the span: the
        simulator result bounds the schedule from below (same durations, no
        power constraint, no interface exclusivity)."""
        simulator = CircuitSwitchedSimulator()
        for index, assignment in enumerate(d695_plan.assignments):
            simulator.add(
                TransferRequest(
                    name=assignment.core_id,
                    resources=assignment.job.resources,
                    duration=assignment.duration,
                    release_time=0,
                    priority=index,
                )
            )
        records = simulator.run()
        simulated_span = max(record.end for record in records)
        assert simulated_span <= d695_plan.makespan


class TestDeterminism:
    def test_full_flow_reproducible(self):
        first = TestPlanner(build_paper_system("d695_plasma")).plan(reused_processors=4)
        second = TestPlanner(build_paper_system("d695_plasma")).plan(reused_processors=4)
        assert first.makespan == second.makespan
        assert [(a.core_id, a.start, a.interface_id) for a in first.assignments] == [
            (a.core_id, a.start, a.interface_id) for a in second.assignments
        ]
